//! The per-thread freeable list of the Amortized Free technique, plus the
//! per-size-class object pool of [`crate::FreeMode::Pooled`].
//!
//! §3.3: "once a batch of nodes has been identified as safe to free, one
//! does not necessarily need to free them immediately as a batch. One could
//! instead place the batch in a thread local *freeable list*, and gradually
//! free objects one by one, each time a data structure operation is
//! performed."
//!
//! [`FreeBuffer`] is deliberately **not** an object pool: the paper wants
//! to show interaction with the allocator can be made fast, not avoided
//! (§3.3 and footnote 4), so it only delays `dealloc` calls — it never
//! serves allocations. [`PoolBins`] is the pooling alternative the paper
//! declines (and footnote 4 credits for VBR's performance), implemented
//! separately so the `ablation_pooled` bench can compare the two.

use crate::retired::Retired;
use epic_alloc::{class_of, BlockHeader, NUM_CLASSES};
use std::collections::VecDeque;

/// FIFO freeable list. FIFO matters: the oldest safe objects are freed
/// first, bounding the staleness of any queued object.
#[derive(Debug, Default)]
pub struct FreeBuffer {
    queue: VecDeque<Retired>,
}

impl FreeBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FreeBuffer {
            queue: VecDeque::new(),
        }
    }

    /// Queues an entire safe batch.
    pub fn absorb(&mut self, batch: &mut Vec<Retired>) {
        self.queue.extend(batch.drain(..));
    }

    /// Queues one object.
    pub fn push(&mut self, r: Retired) {
        self.queue.push_back(r);
    }

    /// Takes up to `n` of the oldest objects.
    pub fn take(&mut self, n: usize) -> impl Iterator<Item = Retired> + '_ {
        let n = n.min(self.queue.len());
        self.queue.drain(..n)
    }

    /// Objects still queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Per-size-class LIFO object pool ([`crate::FreeMode::Pooled`]).
///
/// LIFO because the most recently retired block is the warmest in cache —
/// the same reason the allocators' thread caches pop newest-first.
#[derive(Debug)]
pub struct PoolBins {
    bins: Box<[Vec<Retired>; NUM_CLASSES]>,
    len: usize,
}

impl Default for PoolBins {
    fn default() -> Self {
        Self::new()
    }
}

impl PoolBins {
    /// An empty pool.
    pub fn new() -> Self {
        PoolBins {
            bins: Box::new(std::array::from_fn(|_| Vec::new())),
            len: 0,
        }
    }

    /// Queues a safe batch, binned by each block's size class (read from
    /// its header).
    ///
    /// # Safety
    /// Every pointer in `batch` must be a live block from the scheme's
    /// pool allocator (so its header is readable).
    pub unsafe fn absorb(&mut self, batch: &mut Vec<Retired>) {
        for r in batch.drain(..) {
            // SAFETY: forwarded to caller.
            let class = unsafe { BlockHeader::from_user(r.ptr) }.class as usize;
            self.bins[class].push(r);
            self.len += 1;
        }
    }

    /// Pops the most recently pooled block that can serve a `size`-byte
    /// allocation (exact class match — a smaller block would corrupt the
    /// heap, a larger one would leak capacity).
    pub fn pop_for(&mut self, size: usize) -> Option<Retired> {
        let class = class_of(size);
        let r = self.bins[class].pop();
        self.len -= usize::from(r.is_some());
        r
    }

    /// Takes up to `n` blocks (largest-bin first) for draining excess pool
    /// memory back to the allocator.
    pub fn take_excess(&mut self, n: usize) -> Vec<Retired> {
        let mut out = Vec::with_capacity(n.min(self.len));
        while out.len() < n {
            let Some(bin) = self.bins.iter_mut().max_by_key(|b| b.len()) else {
                break;
            };
            match bin.pop() {
                Some(r) => {
                    self.len -= 1;
                    out.push(r);
                }
                None => break,
            }
        }
        out
    }

    /// Drains the entire pool (teardown).
    pub fn drain_all(&mut self) -> Vec<Retired> {
        let mut out = Vec::with_capacity(self.len);
        for bin in self.bins.iter_mut() {
            out.append(bin);
        }
        self.len = 0;
        out
    }

    /// Blocks currently pooled.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ptr::NonNull;

    fn retired(tag: usize) -> Retired {
        // Tests only compare addresses; fabricate distinct non-null values.
        Retired::new(NonNull::new(tag as *mut u8).unwrap())
    }

    #[test]
    fn absorb_then_drain_fifo() {
        let mut buf = FreeBuffer::new();
        let mut batch = vec![retired(1), retired(2), retired(3)];
        buf.absorb(&mut batch);
        assert!(batch.is_empty());
        assert_eq!(buf.len(), 3);
        let first: Vec<usize> = buf.take(2).map(|r| r.addr()).collect();
        assert_eq!(first, vec![1, 2], "oldest first");
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn take_more_than_available() {
        let mut buf = FreeBuffer::new();
        buf.push(retired(9));
        let got: Vec<usize> = buf.take(10).map(|r| r.addr()).collect();
        assert_eq!(got, vec![9]);
        assert!(buf.is_empty());
    }

    #[test]
    fn take_zero_is_noop() {
        let mut buf = FreeBuffer::new();
        buf.push(retired(1));
        assert_eq!(buf.take(0).count(), 0);
        assert_eq!(buf.len(), 1);
    }

    mod pool_bins {
        use super::super::PoolBins;
        use crate::Retired;
        use epic_alloc::{build_allocator, AllocatorKind, CostModel, PoolAllocator};
        use std::sync::Arc;

        fn alloc_batch(a: &Arc<dyn PoolAllocator>, sizes: &[usize]) -> Vec<Retired> {
            sizes.iter().map(|&s| Retired::new(a.alloc(0, s))).collect()
        }

        fn free_all(a: &Arc<dyn PoolAllocator>, rs: impl IntoIterator<Item = Retired>) {
            for r in rs {
                a.dealloc(0, r.ptr);
            }
        }

        #[test]
        fn absorb_bins_by_class_and_pop_matches() {
            let a = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
            let mut pool = PoolBins::new();
            let mut batch = alloc_batch(&a, &[64, 240, 64, 100]);
            let addrs: Vec<usize> = batch.iter().map(Retired::addr).collect();
            // SAFETY: live blocks from `a`.
            unsafe { pool.absorb(&mut batch) };
            assert!(batch.is_empty());
            assert_eq!(pool.len(), 4);
            // 240 and 100 land in different classes (256 vs 128).
            let hit = pool
                .pop_for(200)
                .expect("the 240-byte block serves a 200-byte ask");
            assert_eq!(hit.addr(), addrs[1]);
            assert!(pool.pop_for(200).is_none(), "class 256 is now empty");
            // LIFO within the 64-byte class.
            assert_eq!(pool.pop_for(64).unwrap().addr(), addrs[2]);
            assert_eq!(pool.pop_for(64).unwrap().addr(), addrs[0]);
            assert_eq!(pool.len(), 1);
            free_all(&a, pool.drain_all());
            free_all(
                &a,
                [
                    hit,
                    Retired::new(std::ptr::NonNull::new(addrs[2] as *mut u8).unwrap()),
                    Retired::new(std::ptr::NonNull::new(addrs[0] as *mut u8).unwrap()),
                ],
            );
        }

        #[test]
        fn take_excess_prefers_fullest_bin() {
            let a = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
            let mut pool = PoolBins::new();
            let mut batch = alloc_batch(&a, &[64, 64, 64, 240]);
            // SAFETY: live blocks.
            unsafe { pool.absorb(&mut batch) };
            let excess = pool.take_excess(2);
            assert_eq!(excess.len(), 2);
            assert_eq!(pool.len(), 2);
            // Both excess blocks came from the (fuller) 64-byte bin.
            assert!(pool.pop_for(240).is_some(), "240-class survived the bleed");
            free_all(&a, excess);
            free_all(&a, pool.drain_all());
        }

        #[test]
        fn drain_all_empties_every_bin() {
            let a = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
            let mut pool = PoolBins::new();
            let mut batch = alloc_batch(&a, &[16, 64, 512, 2048]);
            // SAFETY: live blocks.
            unsafe { pool.absorb(&mut batch) };
            let all = pool.drain_all();
            assert_eq!(all.len(), 4);
            assert!(pool.is_empty());
            assert!(pool.pop_for(64).is_none());
            assert_eq!(pool.take_excess(10).len(), 0);
            free_all(&a, all);
        }
    }
}
