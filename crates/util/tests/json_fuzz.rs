//! Deterministic fuzzing for `epic_util::json`.
//!
//! Two properties, both under fixed seeds so failures reproduce exactly:
//!
//! 1. **Round trip**: for generated values `v` built from the renderable
//!    subset (finite numbers, arbitrary strings, bounded nesting),
//!    `parse(render(v)) == v` and a second render is byte-stable.
//! 2. **Error, not panic**: malformed documents — a hand-written corpus
//!    plus seeded mutations of valid documents — must return `Err`
//!    (or a different valid value), never panic, hang, or succeed with
//!    trailing garbage.

use epic_util::json::Json;
use epic_util::XorShift64;

/// A deterministic generator over the subset of values the renderer can
/// represent losslessly: no NaN/±inf (they render as `null` by design)
/// and depth-bounded containers.
fn gen_value(rng: &mut XorShift64, depth: usize) -> Json {
    // At the depth limit only scalars; otherwise containers get rarer
    // with depth so documents stay small.
    let scalar_only = depth == 0;
    match rng.next_bounded(if scalar_only { 4 } else { 6 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.coin()),
        2 => Json::Num(gen_number(rng)),
        3 => Json::Str(gen_string(rng)),
        4 => {
            let n = rng.next_bounded(4) as usize;
            Json::Arr((0..n).map(|_| gen_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.next_bounded(4) as usize;
            Json::Obj(
                (0..n)
                    .map(|_| (gen_string(rng), gen_value(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

fn gen_number(rng: &mut XorShift64) -> f64 {
    match rng.next_bounded(4) {
        // Small integers: exercise the integral `x.0` rendering rule.
        0 => rng.next_bounded(2_001) as f64 - 1_000.0,
        // Dyadic fractions: exactly representable, non-integral.
        1 => (rng.next_bounded(1 << 20) as f64 - (1 << 19) as f64) / 64.0,
        // Large magnitudes: cross the 1e15 formatting cutoff.
        2 => (rng.next_u64() >> 8) as f64 * 1e3,
        // Arbitrary finite doubles via shortest-roundtrip formatting.
        _ => {
            let bits = rng.next_u64();
            let v = f64::from_bits(bits);
            if v.is_finite() {
                v
            } else {
                bits as f64 // NaN/inf bit patterns: fall back to an integer
            }
        }
    }
}

fn gen_string(rng: &mut XorShift64) -> String {
    let n = rng.next_bounded(12) as usize;
    (0..n)
        .map(|_| match rng.next_bounded(5) {
            // Plain ASCII.
            0 | 1 => (b'a' + rng.next_bounded(26) as u8) as char,
            // Characters the writer must escape.
            2 => ['"', '\\', '\n', '\t', '/'][rng.next_bounded(5) as usize],
            // Control characters (forced through \uXXXX).
            3 => char::from_u32(rng.next_bounded(0x20) as u32).unwrap(),
            // Non-ASCII scalars, including astral plane (surrogate pairs
            // in escapes, multi-byte UTF-8 raw).
            _ => ['é', 'ß', '中', '🦀', '😀', '\u{7f}', '\u{2028}'][rng.next_bounded(7) as usize],
        })
        .collect()
}

#[test]
fn generated_values_round_trip() {
    let mut rng = XorShift64::new(0x5eed_0001);
    for i in 0..500 {
        let v = gen_value(&mut rng, 3);
        let rendered = v.render();
        let back = Json::parse(&rendered)
            .unwrap_or_else(|e| panic!("iter {i}: rendered doc failed to parse: {e}\n{rendered}"));
        assert_eq!(
            back, v,
            "iter {i}: value changed across the round trip\n{rendered}"
        );
        // Render is a fixed point: a second trip is byte-identical.
        assert_eq!(back.render(), rendered, "iter {i}: render not stable");
    }
}

#[test]
fn malformed_corpus_errors_without_panic() {
    let corpus = [
        "",
        " ",
        "nul",
        "truefalse",
        "+1",
        "-",
        "0x10",
        "1e",
        "1e+",
        "--1",
        "1.2.3",
        "[",
        "[1 2]",
        "[1,]",
        "[,1]",
        "]",
        "{",
        "}",
        "{]",
        "{\"a\"}",
        "{\"a\":}",
        "{\"a\":1,}",
        "{a:1}",
        "{1:2}",
        "\"",
        "\"\\\"",
        "\"\\x41\"",
        "\"\\u12\"",
        "\"\\u123g\"",
        "\"\\ud800\"",
        "\"\\ud800\\n\"",
        "\"\\udc00\"",
        "null null",
        "[1] []",
        "\u{0}",
        "[\u{1}]",
    ];
    for doc in corpus {
        // The property is "returns", not "returns Err with a nice
        // message": parse must come back with an error, not panic.
        assert!(Json::parse(doc).is_err(), "should reject {doc:?}");
    }
}

#[test]
fn mutated_documents_error_or_reparse_without_panic() {
    let mut rng = XorShift64::new(0x5eed_0002);
    let seeds: Vec<String> = (0..40).map(|_| gen_value(&mut rng, 3).render()).collect();
    let mut parsed = 0usize;
    for (i, seed_doc) in seeds.iter().enumerate() {
        for j in 0..40 {
            let mut bytes = seed_doc.clone().into_bytes();
            if bytes.is_empty() {
                continue;
            }
            // One random byte-level mutation: overwrite, delete, or
            // duplicate. The result is often invalid UTF-8 or invalid
            // JSON; it must never be a panic.
            let pos = rng.next_bounded(bytes.len() as u64) as usize;
            match rng.next_bounded(3) {
                0 => bytes[pos] = rng.next_u64() as u8,
                1 => {
                    bytes.remove(pos);
                }
                _ => {
                    let b = bytes[pos];
                    bytes.insert(pos, b);
                }
            }
            match String::from_utf8(bytes) {
                // Invalid UTF-8 never reaches the parser (it takes &str);
                // that rejection layer is std's job, not ours.
                Err(_) => continue,
                Ok(doc) => {
                    // Either outcome is fine; panicking is not.
                    if Json::parse(&doc).is_ok() {
                        parsed += 1;
                    } else {
                        let _ = (i, j); // labels available when debugging
                    }
                }
            }
        }
    }
    // Sanity: some mutations must still parse (e.g. digit tweaks),
    // otherwise the mutator is only producing trivially-broken inputs.
    assert!(parsed > 0, "mutator never produced a still-valid document");
}
