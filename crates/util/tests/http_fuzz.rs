//! Deterministic fuzzing for `epic_util::http`, in the style of
//! `json_fuzz.rs`: fixed seeds so failures reproduce exactly.
//!
//! Three properties:
//!
//! 1. **Error, not panic**: a hand-written malformed-request corpus
//!    (truncated request lines, oversized headers, bad Content-Length,
//!    pipelined garbage) plus seeded byte-level mutations of valid
//!    requests must return `Err` or a valid `Request` — never panic,
//!    never hang (every read is capped), and every error either maps to
//!    a 4xx/5xx response or marks the connection dead.
//! 2. **Happy-path round trip**: generated request bytes parse back to
//!    the method/target/headers/body that produced them.
//! 3. **Connection hygiene**: leftover bytes after one parsed request
//!    (pipelining) are untouched, and a response renders with exactly
//!    one header block and an accurate `content-length`.

use epic_util::http::{HttpError, Limits, Request, Response};
use epic_util::XorShift64;
use std::io::BufReader;

fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
    Request::parse(&mut BufReader::new(bytes), &Limits::default())
}

#[test]
fn malformed_corpus_errors_without_panic() {
    let oversized_header = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "v".repeat(10_000));
    let header_flood = format!(
        "GET / HTTP/1.1\r\n{}\r\n",
        (0..200).map(|i| format!("h{i}: v\r\n")).collect::<String>()
    );
    let corpus: Vec<&[u8]> = vec![
        // Truncated request lines.
        b"",
        b"G",
        b"GET",
        b"GET /",
        b"GET / HTTP/1.1",
        b"GET / HTTP/1.1\r",
        b"GET / HTTP/1.1\r\nHost: x",
        // Malformed request lines.
        b"\r\n\r\n",
        b" / HTTP/1.1\r\n\r\n",
        b"GET  HTTP/1.1\r\n\r\n",
        b"get / HTTP/1.1\r\n\r\n",
        b"GET / HTTP/1.1 extra\r\n\r\n",
        b"GET noslash HTTP/1.1\r\n\r\n",
        b"GET / HTTP/2.0\r\n\r\n",
        b"GET / FTP/1.1\r\n\r\n",
        b"\xff\xfe GET / HTTP/1.1\r\n\r\n",
        // Bad headers.
        b"GET / HTTP/1.1\r\nno colon\r\n\r\n",
        b"GET / HTTP/1.1\r\n: empty\r\n\r\n",
        b"GET / HTTP/1.1\r\nbad name: v\r\n\r\n",
        b"GET / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nbody",
        // Bad Content-Length.
        b"POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
        b"POST / HTTP/1.1\r\ncontent-length: -1\r\n\r\n",
        b"POST / HTTP/1.1\r\ncontent-length: 1e3\r\n\r\n",
        b"POST / HTTP/1.1\r\ncontent-length: 99999999999999999999\r\n\r\n",
        b"POST / HTTP/1.1\r\ncontent-length: 10000000\r\n\r\n",
        b"POST / HTTP/1.1\r\ncontent-length: 5\r\ncontent-length: 6\r\n\r\nhello!",
        // Body shorter than declared.
        b"POST / HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort",
        // Pipelined garbage after the header block of a bodyless request
        // (must parse the first request and leave the rest alone).
        oversized_header.as_bytes(),
        header_flood.as_bytes(),
    ];
    for (i, bytes) in corpus.iter().enumerate() {
        match parse(bytes) {
            Ok(req) => {
                // The only corpus entries allowed to parse are the
                // pipelined ones; anything else succeeding is a miss.
                assert!(
                    req.method == "GET" && req.target == "/",
                    "corpus[{i}] unexpectedly parsed: {req:?}"
                );
            }
            Err(e) => {
                // Every error must map to a response or a dead socket.
                let status = e.status();
                assert!(
                    status.is_none() || (400..=599).contains(&status.unwrap()),
                    "corpus[{i}]: error {e:?} maps to non-error status {status:?}"
                );
            }
        }
    }
}

#[test]
fn seeded_mutations_never_panic() {
    let valid: &[u8] =
        b"POST /jobs HTTP/1.1\r\nhost: localhost\r\ncontent-length: 19\r\n\r\n{\"experiment\": \"x\"}";
    let mut rng = XorShift64::new(0x5eed_4000);
    for _ in 0..1600 {
        let mut bytes = valid.to_vec();
        match rng.next_bounded(3) {
            // Flip a byte.
            0 => {
                let i = rng.next_bounded(bytes.len() as u64) as usize;
                bytes[i] ^= 1 << rng.next_bounded(8);
            }
            // Truncate.
            1 => bytes.truncate(rng.next_bounded(bytes.len() as u64) as usize),
            // Duplicate a random slice in place (shifts the framing).
            _ => {
                let i = rng.next_bounded(bytes.len() as u64) as usize;
                let j = i + rng.next_bounded((bytes.len() - i) as u64 + 1) as usize;
                let slice = bytes[i..j].to_vec();
                let at = rng.next_bounded(bytes.len() as u64) as usize;
                for (k, b) in slice.into_iter().enumerate() {
                    bytes.insert(at + k, b);
                }
            }
        }
        // Any outcome but a panic is fine; statuses must stay 4xx/5xx.
        if let Err(e) = parse(&bytes) {
            if let Some(s) = e.status() {
                assert!((400..=599).contains(&s), "{e:?} -> {s}");
            }
        }
    }
}

/// Deterministically generated well-formed requests round-trip through
/// the parser field by field.
#[test]
fn generated_requests_round_trip() {
    let mut rng = XorShift64::new(0x5eed_4001);
    for i in 0..300 {
        let method = ["GET", "POST", "DELETE", "PUT"][rng.next_bounded(4) as usize];
        let target = format!("/seg{}/{}", rng.next_bounded(100), rng.next_bounded(1000));
        let n_headers = rng.next_bounded(6) as usize;
        let headers: Vec<(String, String)> = (0..n_headers)
            .map(|k| (format!("x-h{k}"), format!("value-{}", rng.next_bounded(50))))
            .collect();
        let body: Vec<u8> = (0..rng.next_bounded(64))
            .map(|_| rng.next_bounded(256) as u8)
            .collect();
        let mut bytes = format!("{method} {target} HTTP/1.1\r\n").into_bytes();
        for (k, v) in &headers {
            bytes.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        if !body.is_empty() {
            bytes.extend_from_slice(format!("content-length: {}\r\n", body.len()).as_bytes());
        }
        bytes.extend_from_slice(b"\r\n");
        bytes.extend_from_slice(&body);
        let req = parse(&bytes).unwrap_or_else(|e| panic!("iter {i}: valid request rejected: {e}"));
        assert_eq!(req.method, method, "iter {i}");
        assert_eq!(req.target, target, "iter {i}");
        assert_eq!(req.body, body, "iter {i}");
        for (k, v) in &headers {
            assert_eq!(req.header(k), Some(v.as_str()), "iter {i}: header {k}");
        }
    }
}

/// After one request is parsed, the reader sits exactly at the start of
/// whatever follows — pipelined bytes are neither consumed nor corrupted.
#[test]
fn pipelined_bytes_stay_in_the_reader() {
    let bytes: &[u8] =
        b"POST /a HTTP/1.1\r\ncontent-length: 3\r\n\r\nabcGET /next HTTP/1.1\r\n\r\ntrailing junk";
    let mut reader = BufReader::new(bytes);
    let first = Request::parse(&mut reader, &Limits::default()).unwrap();
    assert_eq!(first.target, "/a");
    assert_eq!(first.body, b"abc");
    // The second request is intact in the stream.
    let second = Request::parse(&mut reader, &Limits::default()).unwrap();
    assert_eq!(second.method, "GET");
    assert_eq!(second.target, "/next");
    // And garbage after it errors without panicking.
    assert!(Request::parse(&mut reader, &Limits::default()).is_err());
}

/// Response rendering: one header block, accurate `content-length`, and
/// a parseable status line — for every status the server emits.
#[test]
fn responses_render_well_formed() {
    for status in [200u16, 202, 400, 404, 405, 413, 431, 501, 503] {
        let body = format!("status {status} body");
        let text = String::from_utf8(Response::text(status, body.clone()).to_bytes()).unwrap();
        assert!(
            text.starts_with(&format!("HTTP/1.1 {status} ")),
            "bad status line: {text}"
        );
        let (head, got_body) = text.split_once("\r\n\r\n").expect("one header block");
        assert_eq!(got_body, body);
        assert!(!got_body.contains("\r\n\r\n"), "double header block");
        assert!(head.contains(&format!("content-length: {}", body.len())));
        assert!(head.contains("connection: close"));
    }
}
