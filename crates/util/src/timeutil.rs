//! Monotonic timing helpers.
//!
//! All timestamps in the workspace are nanoseconds since an arbitrary
//! process-local origin, represented as `u64`. A single [`Clock`] origin is
//! established lazily so that timelines recorded by different threads share
//! an axis.

use std::sync::OnceLock;
use std::time::Instant;

static ORIGIN: OnceLock<Instant> = OnceLock::new();

/// Returns the shared clock origin, establishing it on first call.
fn origin() -> Instant {
    *ORIGIN.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the process-wide clock origin.
///
/// Costs one `clock_gettime` via vDSO (~20 ns on Linux). Call sites that
/// need cheaper timing should sample (see `epic-alloc`'s sampled timers).
#[inline]
pub fn now_ns() -> u64 {
    origin().elapsed().as_nanos() as u64
}

/// A reusable stopwatch over the shared origin.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    start: u64,
}

impl Default for Clock {
    fn default() -> Self {
        Self::start()
    }
}

impl Clock {
    /// Starts a stopwatch now.
    pub fn start() -> Self {
        Clock { start: now_ns() }
    }

    /// Nanoseconds since this stopwatch started.
    pub fn elapsed_ns(&self) -> u64 {
        now_ns().saturating_sub(self.start)
    }

    /// The absolute start timestamp (shared-origin nanoseconds).
    pub fn start_ns(&self) -> u64 {
        self.start
    }
}

/// Busy-spins for approximately `ns` nanoseconds.
///
/// Used by the allocator cost model to emulate remote-socket coherence
/// misses: the thread must *occupy the core and hold any locks it holds*
/// for the duration, which sleeping would not model. Accuracy is bounded by
/// `now_ns` granularity; for the 100–1000 ns range used by the cost model
/// the error is small relative to scheduling noise.
#[inline]
pub fn busy_spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let deadline = now_ns() + ns;
    while now_ns() < deadline {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn clock_measures_elapsed() {
        let c = Clock::start();
        busy_spin_ns(100_000);
        assert!(c.elapsed_ns() >= 100_000);
    }

    #[test]
    fn busy_spin_zero_is_free() {
        let c = Clock::start();
        busy_spin_ns(0);
        // Should return essentially immediately (well under 1 ms even on a
        // loaded CI box).
        assert!(c.elapsed_ns() < 1_000_000);
    }

    #[test]
    fn shared_origin_across_threads() {
        let t0 = now_ns();
        let handle = std::thread::spawn(now_ns);
        let t1 = handle.join().unwrap();
        // The spawned thread's timestamp must be on the same axis.
        assert!(t1 >= t0);
        assert!(t1 - t0 < 5_000_000_000, "timestamps wildly divergent");
    }
}
