//! System topology discovery and experiment-scale derivation.
//!
//! The paper runs on a 4-socket, 192-hardware-thread Xeon with thread counts
//! {6, 12, 24, 36, 48, 96, 144, 192}. This module maps that *shape* — a sweep
//! from a fraction of the machine to 2× oversubscription — onto whatever
//! machine the reproduction runs on, and honours environment overrides so the
//! benches scale up on larger hardware.

use std::collections::BTreeSet;
use std::env;
use std::sync::{Mutex, OnceLock};

/// Keys we have already warned about — malformed env values warn once per
/// key per process, not once per read (experiments re-read config many
/// times per trial).
fn warned_keys() -> &'static Mutex<BTreeSet<String>> {
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Emits a one-time stderr warning that `key`'s value `raw` could not be
/// parsed as `expected`. Returns `true` if this call actually warned
/// (first malformed read of `key`), `false` if the key was already
/// reported — exposed so tests can pin the once-per-key contract.
pub fn warn_malformed_env(key: &str, raw: &str, expected: &str) -> bool {
    let mut seen = warned_keys().lock().unwrap_or_else(|e| e.into_inner());
    if !seen.insert(key.to_string()) {
        return false;
    }
    eprintln!("epic: warning: ignoring malformed {key}={raw:?} (expected {expected})");
    true
}

/// Discovered machine topology plus experiment scaling rules.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Logical CPUs available to this process.
    pub logical_cpus: usize,
}

impl Default for Topology {
    fn default() -> Self {
        Self::detect()
    }
}

impl Topology {
    /// Detects the current machine.
    pub fn detect() -> Self {
        let logical_cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Topology { logical_cpus }
    }

    /// Constructs a fixed topology (tests, presets of the paper's machines).
    pub fn with_cpus(logical_cpus: usize) -> Self {
        Topology { logical_cpus }
    }

    /// The thread-count sweep used by sweep experiments.
    ///
    /// Honors `EPIC_THREADS` (comma-separated list) when set; otherwise
    /// produces powers of two from 1 up to 2× the logical CPU count — the
    /// same saturation→oversubscription shape as the paper's 6..192 sweep
    /// (192 HW threads, with the last points past single-socket capacity).
    pub fn sweep_threads(&self) -> Vec<usize> {
        if let Some(list) = env_usize_list("EPIC_THREADS") {
            return list;
        }
        let max = (self.logical_cpus * 2).max(2);
        let mut counts = Vec::new();
        let mut n = 1;
        while n < max {
            counts.push(n);
            n *= 2;
        }
        counts.push(max);
        counts
    }

    /// The "192 threads" of the paper: the most oversubscribed point of the
    /// sweep, used by the fixed-thread-count tables (Tables 2–4, Fig. 11b).
    pub fn max_threads(&self) -> usize {
        *self.sweep_threads().last().expect("sweep is never empty")
    }

    /// A "moderate" thread count corresponding to the paper's 96-thread
    /// (half-scale) data points.
    pub fn mid_threads(&self) -> usize {
        (self.max_threads() / 2).max(1)
    }
}

fn env_usize_list(key: &str) -> Option<Vec<usize>> {
    let raw = env::var(key).ok()?;
    let mut dropped = false;
    let parsed: Vec<usize> = raw
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .filter_map(|s| match s.trim().parse().ok() {
            Some(n) => Some(n),
            None => {
                dropped = true;
                None
            }
        })
        .collect();
    if dropped {
        warn_malformed_env(key, &raw, "comma-separated list of usize");
    }
    if parsed.is_empty() {
        None
    } else {
        Some(parsed)
    }
}

/// Reads a `usize` experiment parameter from the environment with a default.
///
/// Malformed values (`EPIC_BAG_CAP=32k`) fall back to the default and warn
/// once per key to stderr — a silent fallback once cost a whole sweep run
/// with the intended cap ignored.
pub fn env_usize(key: &str, default: usize) -> usize {
    match env::var(key) {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|_| {
            warn_malformed_env(key, &raw, "usize");
            default
        }),
        Err(_) => default,
    }
}

/// Reads a `u64` experiment parameter from the environment with a default.
///
/// Same malformed-value contract as [`env_usize`]: fall back, warn once.
pub fn env_u64(key: &str, default: u64) -> u64 {
    match env::var(key) {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|_| {
            warn_malformed_env(key, &raw, "u64");
            default
        }),
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_reports_at_least_one_cpu() {
        assert!(Topology::detect().logical_cpus >= 1);
    }

    #[test]
    fn sweep_shape() {
        let t = Topology::with_cpus(4);
        // Ignore env override for a deterministic check by computing directly.
        let sweep = {
            let max = t.logical_cpus * 2;
            let mut v = vec![];
            let mut n = 1;
            while n < max {
                v.push(n);
                n *= 2;
            }
            v.push(max);
            v
        };
        assert_eq!(sweep, vec![1, 2, 4, 8]);
    }

    #[test]
    fn max_is_twice_cpus_without_override() {
        if std::env::var("EPIC_THREADS").is_err() {
            let t = Topology::with_cpus(8);
            assert_eq!(t.max_threads(), 16);
            assert_eq!(t.mid_threads(), 8);
        }
    }

    #[test]
    fn env_usize_default_applies() {
        assert_eq!(env_usize("EPIC_DOES_NOT_EXIST_XYZ", 17), 17);
    }

    // The env tests below each use a key unique to that test: tests run in
    // parallel and the process environment (plus the warn-once registry)
    // is shared.

    #[test]
    fn env_usize_malformed_falls_back_and_warns_once() {
        let key = "EPIC_TEST_MALFORMED_USIZE";
        env::set_var(key, "32k");
        assert_eq!(env_usize(key, 4096), 4096);
        // First malformed read warned; the registry now remembers the key.
        assert!(!warn_malformed_env(key, "32k", "usize"));
        // Repeated reads keep the fallback semantics.
        assert_eq!(env_usize(key, 9), 9);
        env::remove_var(key);
    }

    #[test]
    fn env_u64_malformed_falls_back() {
        let key = "EPIC_TEST_MALFORMED_U64";
        env::set_var(key, "12.5");
        assert_eq!(env_u64(key, 200), 200);
        env::remove_var(key);
        // Well-formed values still parse (with surrounding whitespace).
        env::set_var(key, " 77 ");
        assert_eq!(env_u64(key, 200), 77);
        env::remove_var(key);
    }

    #[test]
    fn env_usize_list_drops_unparsable_entries() {
        let key = "EPIC_TEST_MALFORMED_LIST";
        env::set_var(key, "1,two,4");
        assert_eq!(env_usize_list(key), Some(vec![1, 4]));
        env::remove_var(key);
        // All-malformed lists behave like an unset variable.
        env::set_var(key, "x,y");
        assert_eq!(env_usize_list(key), None);
        env::remove_var(key);
    }

    #[test]
    fn warn_malformed_env_warns_once_per_key() {
        let key = "EPIC_TEST_WARN_ONCE";
        assert!(warn_malformed_env(key, "bogus", "usize"));
        assert!(!warn_malformed_env(key, "bogus", "usize"));
        assert!(!warn_malformed_env(key, "other", "u64"));
    }
}
