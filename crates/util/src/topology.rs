//! System topology discovery and experiment-scale derivation.
//!
//! The paper runs on a 4-socket, 192-hardware-thread Xeon with thread counts
//! {6, 12, 24, 36, 48, 96, 144, 192}. This module maps that *shape* — a sweep
//! from a fraction of the machine to 2× oversubscription — onto whatever
//! machine the reproduction runs on, and honours environment overrides so the
//! benches scale up on larger hardware.

use std::env;

/// Discovered machine topology plus experiment scaling rules.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Logical CPUs available to this process.
    pub logical_cpus: usize,
}

impl Default for Topology {
    fn default() -> Self {
        Self::detect()
    }
}

impl Topology {
    /// Detects the current machine.
    pub fn detect() -> Self {
        let logical_cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Topology { logical_cpus }
    }

    /// Constructs a fixed topology (tests, presets of the paper's machines).
    pub fn with_cpus(logical_cpus: usize) -> Self {
        Topology { logical_cpus }
    }

    /// The thread-count sweep used by sweep experiments.
    ///
    /// Honors `EPIC_THREADS` (comma-separated list) when set; otherwise
    /// produces powers of two from 1 up to 2× the logical CPU count — the
    /// same saturation→oversubscription shape as the paper's 6..192 sweep
    /// (192 HW threads, with the last points past single-socket capacity).
    pub fn sweep_threads(&self) -> Vec<usize> {
        if let Some(list) = env_usize_list("EPIC_THREADS") {
            return list;
        }
        let max = (self.logical_cpus * 2).max(2);
        let mut counts = Vec::new();
        let mut n = 1;
        while n < max {
            counts.push(n);
            n *= 2;
        }
        counts.push(max);
        counts
    }

    /// The "192 threads" of the paper: the most oversubscribed point of the
    /// sweep, used by the fixed-thread-count tables (Tables 2–4, Fig. 11b).
    pub fn max_threads(&self) -> usize {
        *self.sweep_threads().last().expect("sweep is never empty")
    }

    /// A "moderate" thread count corresponding to the paper's 96-thread
    /// (half-scale) data points.
    pub fn mid_threads(&self) -> usize {
        (self.max_threads() / 2).max(1)
    }
}

fn env_usize_list(key: &str) -> Option<Vec<usize>> {
    let raw = env::var(key).ok()?;
    let parsed: Vec<usize> = raw
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    if parsed.is_empty() {
        None
    } else {
        Some(parsed)
    }
}

/// Reads a `usize` experiment parameter from the environment with a default.
pub fn env_usize(key: &str, default: usize) -> usize {
    env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` experiment parameter from the environment with a default.
pub fn env_u64(key: &str, default: u64) -> u64 {
    env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_reports_at_least_one_cpu() {
        assert!(Topology::detect().logical_cpus >= 1);
    }

    #[test]
    fn sweep_shape() {
        let t = Topology::with_cpus(4);
        // Ignore env override for a deterministic check by computing directly.
        let sweep = {
            let max = t.logical_cpus * 2;
            let mut v = vec![];
            let mut n = 1;
            while n < max {
                v.push(n);
                n *= 2;
            }
            v.push(max);
            v
        };
        assert_eq!(sweep, vec![1, 2, 4, 8]);
    }

    #[test]
    fn max_is_twice_cpus_without_override() {
        if std::env::var("EPIC_THREADS").is_err() {
            let t = Topology::with_cpus(8);
            assert_eq!(t.max_threads(), 16);
            assert_eq!(t.mid_threads(), 8);
        }
    }

    #[test]
    fn env_usize_default_applies() {
        assert_eq!(env_usize("EPIC_DOES_NOT_EXIST_XYZ", 17), 17);
    }
}
