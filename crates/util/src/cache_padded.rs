//! Cache-line padding to prevent false sharing.
//!
//! Modern x86-64 parts fetch cache lines in aligned 64-byte units but the
//! adjacent-line prefetcher effectively couples *pairs* of lines, so we pad to
//! 128 bytes (the same choice crossbeam and folly make). On a benchmark whose
//! entire point is isolating allocator-induced contention, false sharing in
//! the measurement infrastructure would be a confounder.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so that it occupies its own cache
/// line(s).
///
/// ```
/// use epic_util::CachePadded;
/// use std::sync::atomic::AtomicU64;
///
/// struct PerThread {
///     counter: CachePadded<AtomicU64>,
/// }
/// let slot = PerThread { counter: CachePadded::new(AtomicU64::new(0)) };
/// assert_eq!(std::mem::align_of_val(&slot.counter), 128);
/// ```
#[derive(Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Wraps `value` in a 128-byte aligned container.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consumes the padding wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T: Clone> Clone for CachePadded<T> {
    fn clone(&self) -> Self {
        CachePadded::new(self.value.clone())
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::mem;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn alignment_is_128() {
        assert_eq!(mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(mem::align_of::<CachePadded<AtomicUsize>>(), 128);
    }

    #[test]
    fn size_is_multiple_of_alignment() {
        assert_eq!(mem::size_of::<CachePadded<u8>>(), 128);
        assert_eq!(mem::size_of::<CachePadded<[u64; 20]>>(), 256);
    }

    #[test]
    fn deref_roundtrip() {
        let mut padded = CachePadded::new(41u64);
        *padded += 1;
        assert_eq!(*padded, 42);
        assert_eq!(padded.into_inner(), 42);
    }

    #[test]
    fn array_of_padded_slots_do_not_share_lines() {
        let slots: [CachePadded<u64>; 4] = Default::default();
        let base = &slots[0] as *const _ as usize;
        for (i, s) in slots.iter().enumerate() {
            let addr = s as *const _ as usize;
            assert_eq!((addr - base) % 128, 0, "slot {i} not line-aligned");
        }
    }

    #[test]
    fn clone_and_debug() {
        let a = CachePadded::new(7u32);
        let b = a.clone();
        assert_eq!(*b, 7);
        assert!(format!("{a:?}").contains('7'));
    }
}
