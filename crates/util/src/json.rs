//! A minimal JSON value model with a recursive-descent parser and a
//! writer — just enough to read and merge the workspace's own artifacts
//! (`SHAPES.json`, `BENCH_*.json`) in the offline container, where no
//! serde is available.
//!
//! Scope (deliberate): UTF-8 input, `\uXXXX` escapes decoded (surrogate
//! pairs included), numbers as `f64`, objects keep insertion order.
//! Numbers render through the same integral-gets-`.1` rule the writers
//! in `epic-harness` use, so a parse → render round trip of our own
//! artifacts is value-stable.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always `f64` here).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last wins on
    /// [`get`](Json::get), all retained).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders the value compactly (no newlines). Numbers follow the
    /// artifact writers' convention: integral values get one decimal
    /// (`2.0`), non-finite values become `null`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&render_num(*n)),
            Json::Str(s) => push_str_literal(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    push_str_literal(out, k);
                    out.push_str(": ");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Formats an `f64` as a JSON number (`null` for NaN/±inf, integral
/// values as `x.0`) — the shared convention of every artifact writer in
/// the workspace.
pub fn render_num(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

/// Appends a JSON string literal (quotes + escapes) to `out`.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("json: {what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a \uXXXX *low*
                                // half next (a high half or a BMP scalar
                                // there is malformed, not combinable).
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        char::from_u32(
                                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar from the input.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"schema": "v2", "xs": [1, 2.5, null], "meta": {"jobs": 4}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("v2"));
        assert_eq!(v.get("xs").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("meta").unwrap().get("jobs").unwrap().as_f64(),
            Some(4.0)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} garbage",
            "{\"a\": }",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("é😀".to_string())
        );
        assert!(Json::parse("\"\\ud83d\"").is_err(), "lone surrogate");
        // A high surrogate must be followed by a *low* surrogate escape —
        // a BMP scalar or a second high half there is malformed, not
        // silently combinable into some other character.
        assert!(Json::parse("\"\\ud800\\u0061\"").is_err(), "high + BMP");
        assert!(Json::parse("\"\\ud800\\ud800\"").is_err(), "high + high");
    }

    #[test]
    fn render_round_trips_artifact_conventions() {
        let doc = r#"{"scheme": "nbr+", "ns": 22.854, "allocs": 0.0, "flag": null}"#;
        let v = Json::parse(doc).unwrap();
        let rendered = v.render();
        assert_eq!(
            rendered,
            r#"{"scheme": "nbr+", "ns": 22.854, "allocs": 0.0, "flag": null}"#
        );
        // Round trip is stable.
        assert_eq!(Json::parse(&rendered).unwrap().render(), rendered);
    }

    #[test]
    fn render_escapes_and_non_finite() {
        let v = Json::Obj(vec![
            ("k\"ey".to_string(), Json::Num(f64::NAN)),
            ("arr".to_string(), Json::Arr(vec![Json::Bool(false)])),
        ]);
        assert_eq!(v.render(), r#"{"k\"ey": null, "arr": [false]}"#);
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = Json::parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn parses_own_artifacts_shape() {
        // The exact layout BENCH_*.json files use.
        let doc = "{\n  \"config\": {\"ops\": 200000},\n  \"schemes\": [\n    {\"scheme\": \
                   \"none\", \"get_ns_per_op\": 76.025, \"mixed_allocs_per_op\": 0.000000}\n  ]\n}\n";
        let v = Json::parse(doc).unwrap();
        let schemes = v.get("schemes").unwrap().as_arr().unwrap();
        assert_eq!(schemes[0].get("scheme").unwrap().as_str(), Some("none"));
        assert_eq!(
            schemes[0].get("get_ns_per_op").unwrap().as_f64(),
            Some(76.025)
        );
    }
}
