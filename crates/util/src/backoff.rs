//! Exponential backoff for contended retry loops.
//!
//! Contended CAS loops and spin locks burn coherence bandwidth; truncated
//! exponential backoff (spin a growing number of `pause` instructions, then
//! fall back to `yield_now`) is the standard remedy. The shape follows
//! crossbeam's `Backoff` so call sites read idiomatically.

use std::hint;
use std::thread;

/// Maximum exponent for pure spinning; beyond this we also yield the thread.
const SPIN_LIMIT: u32 = 6;
/// Maximum exponent overall; backoff saturates here.
const YIELD_LIMIT: u32 = 10;

/// Truncated exponential backoff helper.
///
/// ```
/// use epic_util::Backoff;
/// use std::sync::atomic::{AtomicBool, Ordering};
///
/// let flag = AtomicBool::new(true);
/// let backoff = Backoff::new();
/// while !flag.load(Ordering::Acquire) {
///     backoff.snooze();
/// }
/// ```
#[derive(Debug)]
pub struct Backoff {
    step: core::cell::Cell<u32>,
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    /// Creates a backoff in its initial (shortest-wait) state.
    pub const fn new() -> Self {
        Backoff {
            step: core::cell::Cell::new(0),
        }
    }

    /// Resets to the initial state; call after the contended operation
    /// finally succeeds so the next contention episode starts cheap.
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Backs off in a lock-free retry loop (spin only, never yields).
    ///
    /// Use this when the failed operation implies *another thread made
    /// progress* (e.g. a failed CAS), so waiting briefly is enough.
    pub fn spin(&self) {
        let step = self.step.get().min(SPIN_LIMIT);
        for _ in 0..(1u32 << step) {
            hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Backs off while *blocked* on another thread (e.g. waiting for a lock
    /// holder); escalates from spinning to `thread::yield_now`.
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            for _ in 0..(1u32 << step) {
                hint::spin_loop();
            }
        } else {
            thread::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// True once backoff has escalated past pure spinning; callers that can
    /// park or otherwise deschedule should do so at this point.
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_saturates() {
        let b = Backoff::new();
        for _ in 0..100 {
            b.spin();
        }
        // `spin` never escalates past SPIN_LIMIT + 1.
        assert!(b.step.get() <= SPIN_LIMIT + 1);
    }

    #[test]
    fn snooze_completes() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..(YIELD_LIMIT + 2) {
            b.snooze();
        }
        assert!(b.is_completed());
    }

    #[test]
    fn reset_restarts_cheap() {
        let b = Backoff::new();
        for _ in 0..20 {
            b.snooze();
        }
        b.reset();
        assert!(!b.is_completed());
        assert_eq!(b.step.get(), 0);
    }
}
