//! Indexed per-thread slots.
//!
//! The whole workspace identifies threads by dense `tid` indices handed out
//! by the SMR registry. `TidSlots<T>` is the standard "indexed thread-local"
//! pattern: a boxed array of cache-padded `UnsafeCell`s where slot `i` is
//! only ever dereferenced by the thread operating as tid `i`.

use crate::cache_padded::CachePadded;
use std::cell::UnsafeCell;

/// Per-thread slots owned by their tid.
///
/// The contained `UnsafeCell` is only dereferenced by the owning thread:
/// every API in this workspace that accepts a `tid` carries the contract
/// that a given tid is used by at most one thread at a time.
pub struct TidSlots<T> {
    slots: Box<[CachePadded<UnsafeCell<T>>]>,
}

// SAFETY: see type docs — slot `i` is only dereferenced by the thread
// registered as tid `i`; the slots themselves are Send.
unsafe impl<T: Send> Sync for TidSlots<T> {}
unsafe impl<T: Send> Send for TidSlots<T> {}

impl<T> TidSlots<T> {
    /// Builds `n` slots from a constructor.
    pub fn new_with(n: usize, mut make: impl FnMut(usize) -> T) -> Self {
        let slots = (0..n)
            .map(|i| CachePadded::new(UnsafeCell::new(make(i))))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        TidSlots { slots }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Mutable access to `tid`'s slot.
    ///
    /// # Safety
    /// Caller must be the unique thread operating as `tid`.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn get_mut(&self, tid: usize) -> &mut T {
        // SAFETY: tid-exclusivity is the caller's contract.
        unsafe { &mut *self.slots[tid].get() }
    }

    /// Shared access to `tid`'s slot for cross-thread *reading*.
    ///
    /// # Safety
    /// Caller must guarantee either that the owner is quiescent, or that the
    /// read tolerates racing with the owner's writes (e.g. monotonic
    /// counters read for reporting).
    #[inline]
    pub unsafe fn peek(&self, tid: usize) -> &T {
        // SAFETY: forwarded to caller.
        unsafe { &*self.slots[tid].get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_independent() {
        let slots: TidSlots<Vec<u32>> = TidSlots::new_with(3, |i| vec![i as u32]);
        // SAFETY: single-threaded test.
        unsafe {
            slots.get_mut(0).push(10);
            slots.get_mut(2).push(20);
            assert_eq!(slots.peek(0).as_slice(), &[0, 10]);
            assert_eq!(slots.peek(1).as_slice(), &[1]);
            assert_eq!(slots.peek(2).as_slice(), &[2, 20]);
        }
    }

    #[test]
    fn cross_thread_ownership_handoff() {
        use std::sync::Arc;
        let slots: Arc<TidSlots<u64>> = Arc::new(TidSlots::new_with(4, |_| 0));
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let slots = Arc::clone(&slots);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        // SAFETY: each thread uses its own tid.
                        unsafe { *slots.get_mut(tid) += 1 };
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: all owners joined; we have exclusive access.
        let total: u64 = (0..4).map(|i| unsafe { *slots.peek(i) }).sum();
        assert_eq!(total, 4000);
    }
}
