//! Streaming statistics for experiment reporting.
//!
//! The paper reports "average throughput over three trials, and the minimum
//! and maximum ... using error bars"; [`OnlineStats`] accumulates exactly
//! those (plus variance via Welford's algorithm, used by the ablation
//! benches to report confidence). [`LogHistogram`] captures latency
//! *distributions* — the free-call latencies of Fig. 3 / Appendix F span
//! five orders of magnitude, which only a log-bucketed histogram reports
//! faithfully.

/// Single-pass mean / min / max / variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation (`NaN` if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Sample-keeping statistics: everything [`OnlineStats`] offers plus
/// order statistics ([`percentile`](Self::percentile)) and a normal-theory
/// confidence interval ([`ci95_halfwidth`](Self::ci95_halfwidth)).
///
/// [`OnlineStats`] is O(1)-space and right for counters pushed millions of
/// times; `SampleStats` is for *trial-level* aggregation (a handful of
/// observations per configuration), where keeping the samples buys exact
/// quantiles and lets the oracle layer reason about run-to-run noise.
#[derive(Debug, Clone, Default)]
pub struct SampleStats {
    samples: Vec<f64>,
    online: OnlineStats,
}

impl SampleStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        SampleStats::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.online.push(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.online.count()
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.online.mean()
    }

    /// Smallest observation (`NaN` if empty).
    pub fn min(&self) -> f64 {
        self.online.min()
    }

    /// Largest observation (`NaN` if empty).
    pub fn max(&self) -> f64 {
        self.online.max()
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        self.online.variance()
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.online.stddev()
    }

    /// The stored observations, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The `q`-percentile (`0 ≤ q ≤ 100`) by linear interpolation between
    /// order statistics (the common "type 7" estimator). `NaN` if empty;
    /// the single sample for n = 1.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q = q.clamp(0.0, 100.0) / 100.0;
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// Median — `percentile(50)`.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Half-width of the 95% confidence interval on the mean:
    /// `t · s / √n` with a small-sample t table (normal 1.96 beyond
    /// n = 30). 0 with fewer than two observations — a single trial
    /// carries no spread information, and the oracle layer treats a zero
    /// half-width as "no noise estimate, use the configured tolerance".
    pub fn ci95_halfwidth(&self) -> f64 {
        let n = self.online.count();
        if n < 2 {
            return 0.0;
        }
        // Two-sided 95% t critical values for df = n-1 (df 1..=30).
        const T95: [f64; 30] = [
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
            2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
            2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
        ];
        let df = (n - 1) as usize;
        let t = if df <= 30 { T95[df - 1] } else { 1.96 };
        t * self.stddev() / (n as f64).sqrt()
    }

    /// Relative noise level: `ci95_halfwidth / |mean|` (0 when the mean is
    /// 0 or fewer than two samples). Oracles widen their tolerances by
    /// this factor so one noisy CI box doesn't flip a verdict.
    pub fn rel_ci95(&self) -> f64 {
        let m = self.mean().abs();
        if m == 0.0 {
            0.0
        } else {
            self.ci95_halfwidth() / m
        }
    }
}

/// Power-of-two-bucketed histogram for latency-style values spanning many
/// orders of magnitude: bucket `i` counts observations in `[2^i, 2^(i+1))`
/// (bucket 0 additionally holds zeros).
///
/// Designed for the free-call latencies of Fig. 3 / Appendix F: the
/// interesting signal is "how many calls were *visible* (≥ 0.1 ms) and how
/// long was the longest", i.e. tail quantiles, not the mean.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        LogHistogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index for a value: `floor(log2(x))`, with 0 mapping to
    /// bucket 0.
    #[inline]
    pub fn bucket_of(x: u64) -> usize {
        (63 - x.max(1).leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `i` (`2^(i+1) - 1`).
    #[inline]
    pub fn bucket_upper(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (2u64 << i) - 1
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: u64) {
        self.buckets[Self::bucket_of(x)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (0 if empty — exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound for the `q`-quantile (0 ≤ q ≤ 1): the upper edge of
    /// the bucket containing it, i.e. accurate to a factor of 2 — the right
    /// resolution for latency tails. Returns 0 if empty. `quantile(1.0)`
    /// returns the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q.max(0.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Number of observations at or above `threshold`, at bucket
    /// resolution: whole buckets whose *lower* edge is ≥ `threshold` (a
    /// lower bound on the true count unless `threshold` is a power of two,
    /// where it is exact at bucket granularity).
    pub fn count_at_least(&self, threshold: u64) -> u64 {
        if threshold <= 1 {
            return self.count;
        }
        let b = Self::bucket_of(threshold);
        let start = if threshold == (1u64 << b) { b } else { b + 1 };
        self.buckets[start.min(self.buckets.len())..].iter().sum()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Resets to empty.
    pub fn clear(&mut self) {
        *self = LogHistogram::new();
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, for reports.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn empty_stats() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn known_sequence() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!(close(s.mean(), 5.0));
        assert!(close(s.variance(), 32.0 / 7.0));
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..40] {
            left.push(x);
        }
        for &x in &data[40..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!(close(left.mean(), whole.mean()));
        assert!(close(left.variance(), whole.variance()));
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert!(close(a.mean(), before.mean()));

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!(close(empty.mean(), 2.0));
    }

    #[test]
    fn sample_stats_empty() {
        let s = SampleStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.percentile(50.0).is_nan());
        assert!(s.median().is_nan());
        assert_eq!(s.ci95_halfwidth(), 0.0);
        assert_eq!(s.rel_ci95(), 0.0);
        assert!(s.samples().is_empty());
    }

    #[test]
    fn sample_stats_single() {
        let mut s = SampleStats::new();
        s.push(7.5);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 7.5);
        assert_eq!(s.percentile(0.0), 7.5);
        assert_eq!(s.percentile(50.0), 7.5);
        assert_eq!(s.percentile(100.0), 7.5);
        // One sample carries no spread information.
        assert_eq!(s.ci95_halfwidth(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn sample_stats_pair() {
        let mut s = SampleStats::new();
        s.push(10.0);
        s.push(20.0);
        assert_eq!(s.count(), 2);
        assert!(close(s.mean(), 15.0));
        assert!(close(s.median(), 15.0));
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 20.0);
        assert!(close(s.percentile(25.0), 12.5));
        // df = 1: t = 12.706, s = sqrt(50), n = 2.
        let expect = 12.706 * 50.0f64.sqrt() / 2.0f64.sqrt();
        assert!(close(s.ci95_halfwidth(), expect));
        assert!(close(s.rel_ci95(), expect / 15.0));
    }

    #[test]
    fn sample_stats_skewed() {
        // Heavily right-skewed: median must sit far below the mean, and
        // the interpolated tail percentile must fall between the two
        // largest order statistics.
        let mut s = SampleStats::new();
        for x in [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 1000.0] {
            s.push(x);
        }
        assert!(close(s.median(), 1.0));
        assert!(s.mean() > 100.0);
        let p95 = s.percentile(95.0);
        assert!(p95 > 2.0 && p95 < 1000.0, "p95 = {p95}");
        assert_eq!(s.percentile(100.0), 1000.0);
        // Monotone in q.
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            let v = s.percentile(q);
            assert!(v >= prev, "percentile not monotone at q={q}");
            prev = v;
        }
    }

    #[test]
    fn sample_stats_matches_online() {
        let mut s = SampleStats::new();
        let mut o = OnlineStats::new();
        for i in 0..40 {
            let x = ((i * 37) % 11) as f64;
            s.push(x);
            o.push(x);
        }
        assert_eq!(s.count(), o.count());
        assert!(close(s.mean(), o.mean()));
        assert!(close(s.variance(), o.variance()));
        assert_eq!(s.min(), o.min());
        assert_eq!(s.max(), o.max());
        // n > 30 uses the normal critical value.
        assert!(close(
            s.ci95_halfwidth(),
            1.96 * o.stddev() / 40.0f64.sqrt()
        ));
    }

    #[test]
    fn hist_bucket_edges() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 0);
        assert_eq!(LogHistogram::bucket_of(2), 1);
        assert_eq!(LogHistogram::bucket_of(3), 1);
        assert_eq!(LogHistogram::bucket_of(4), 2);
        assert_eq!(LogHistogram::bucket_of(1023), 9);
        assert_eq!(LogHistogram::bucket_of(1024), 10);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 63);
        assert_eq!(LogHistogram::bucket_upper(0), 1);
        assert_eq!(LogHistogram::bucket_upper(9), 1023);
        assert_eq!(LogHistogram::bucket_upper(63), u64::MAX);
    }

    #[test]
    fn hist_empty() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn hist_known_distribution() {
        let mut h = LogHistogram::new();
        // 90 fast observations (~100 ns), 9 medium (~10 us), 1 slow (5 ms).
        for _ in 0..90 {
            h.push(100);
        }
        for _ in 0..9 {
            h.push(10_000);
        }
        h.push(5_000_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 5_000_000);
        // p50 lands in the 100ns bucket: [64, 128).
        assert_eq!(h.quantile(0.5), 127);
        // p99 lands in the 10us bucket: [8192, 16384).
        assert_eq!(h.quantile(0.99), 16_383);
        // p100 is the exact max.
        assert_eq!(h.quantile(1.0), 5_000_000);
        // "visible" count at a 1ms threshold (not a power of two -> counts
        // buckets fully above it).
        assert_eq!(h.count_at_least(1_000_000), 1);
        assert_eq!(h.count_at_least(1), 100);
    }

    #[test]
    fn hist_quantile_is_monotone_and_bounds_max() {
        let mut h = LogHistogram::new();
        let mut x = 1u64;
        for i in 0..1000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i) % 1_000_000 + 1;
            h.push(x);
        }
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let v = h.quantile(q);
            assert!(
                v >= prev,
                "quantile must be monotone: q={q} gave {v} < {prev}"
            );
            assert!(v <= h.max());
            prev = v;
        }
    }

    #[test]
    fn hist_merge_equals_sequential() {
        let values: Vec<u64> = (1..500u64).map(|i| i * i % 70_000 + 1).collect();
        let mut whole = LogHistogram::new();
        let mut left = LogHistogram::new();
        let mut right = LogHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.push(v);
            if i % 2 == 0 {
                left.push(v);
            } else {
                right.push(v);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.sum(), whole.sum());
        assert_eq!(left.max(), whole.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(left.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn hist_clear_resets() {
        let mut h = LogHistogram::new();
        h.push(42);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn hist_power_of_two_threshold_is_exact() {
        let mut h = LogHistogram::new();
        for v in [100u64, 128, 127, 256, 4096] {
            h.push(v);
        }
        // Bucket lower edges: 100->[64), 127->[64), 128->[128), 256, 4096.
        assert_eq!(h.count_at_least(128), 3);
        assert_eq!(h.count_at_least(64), 5);
    }
}
