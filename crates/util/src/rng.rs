//! Fast non-cryptographic RNGs for workload generation.
//!
//! The benchmark threads draw one random key per operation; `rand`'s
//! thread-local generators are excellent but their per-call overhead and
//! TLS access are measurable at the tens-of-millions-of-ops/sec the paper
//! operates at. These generators are plain structs the harness embeds in
//! each worker's stack frame.

/// SplitMix64 — used to seed other generators and for one-off mixing.
///
/// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014). Passes BigCrush when used as a stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an arbitrary seed (0 is fine).
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xorshift64* — the per-thread workload generator.
///
/// Period 2^64 − 1; state must be non-zero, which [`XorShift64::new`]
/// guarantees by seeding through SplitMix64.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator with a de-correlated per-thread seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut state = sm.next_u64();
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        XorShift64 { state }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift reduction
    /// (no modulo on the hot path; the slight non-uniformity for huge bounds
    /// is irrelevant for workload keys).
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniformly random bool — the paper's "flip a coin to decide whether
    /// to insert or delete".
    #[inline]
    pub fn coin(&mut self) -> bool {
        // Use the high bit: low bits of xorshift* are weakest.
        self.next_u64() >> 63 == 1
    }
}

/// A Zipfian key generator over `[0, n)` with skew parameter `theta`
/// (0 = uniform-ish, 0.99 = the YCSB default hot-spot workload).
///
/// Implements the Gray et al. "Quickly generating billion-record
/// synthetic databases" (SIGMOD 1994) closed-form sampler: the zeta
/// constants are computed once in `new` (O(n)), after which each draw
/// costs two `powf` calls and no rejection loop — deterministic given
/// the caller's RNG stream, which is what the scenario engine's
/// replay-from-provenance contract needs.
///
/// The *rank* is Zipf-distributed; ranks are scattered over the key
/// space by a fixed multiplicative hash so the hot keys are not all
/// adjacent in tree order (adjacent hot keys would measure node-level
/// contention, not skew).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Prepares a sampler for `n` items with skew `theta`.
    ///
    /// # Panics
    /// If `n == 0`, or `theta` is not in `[0, 1)` (theta = 1 diverges).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipfian over an empty domain");
        assert!(
            (0.0..1.0).contains(&theta),
            "zipf theta must be in [0, 1), got {theta}"
        );
        let zeta = |count: u64| -> f64 { (1..=count).map(|i| 1.0 / (i as f64).powf(theta)).sum() };
        let zetan = zeta(n);
        let zeta2 = zeta(2.min(n));
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    /// Draws the next Zipf-distributed *rank* in `[0, n)` (0 = hottest).
    pub fn next_rank(&self, rng: &mut XorShift64) -> u64 {
        // 53-bit uniform in [0, 1) — same construction the workload
        // driver uses for its update-ratio coin.
        let u = (rng.next_u64() >> 11) as f64 / 9_007_199_254_740_992.0;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Draws the next key in `[0, n)`: the Zipf rank scattered over the
    /// domain by a fixed odd-multiplier hash, so hot keys spread across
    /// the structure instead of clustering at one end.
    pub fn next_key(&self, rng: &mut XorShift64) -> u64 {
        let rank = self.next_rank(rng);
        // Multiplicative scatter, then Lemire-style reduction into [0, n).
        let mixed = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (rank >> 3);
        ((u128::from(mixed) * u128::from(self.n)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_vector() {
        // First outputs for seed 0, cross-checked against the reference
        // implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn xorshift_nonzero_state_even_from_zero_seed() {
        let mut x = XorShift64::new(0);
        // Must not get stuck at zero.
        let a = x.next_u64();
        let b = x.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn bounded_stays_in_range_and_covers() {
        let mut x = XorShift64::new(42);
        let bound = 10;
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = x.next_bounded(bound);
            assert!(v < bound);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn coin_is_roughly_fair() {
        let mut x = XorShift64::new(7);
        let heads: u32 = (0..100_000).map(|_| u32::from(x.coin())).sum();
        // 3-sigma bound for Binomial(1e5, 0.5) is about 474.
        assert!((heads as i64 - 50_000).abs() < 1_500, "heads = {heads}");
    }

    #[test]
    fn distinct_seeds_decorrelate() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let matches = (0..1_000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn zipf_stays_in_range_and_skews() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = XorShift64::new(7);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            let r = z.next_rank(&mut rng);
            assert!(r < 1000);
            counts[r as usize] += 1;
        }
        // At theta 0.99 rank 0 takes a large constant share; the tail half
        // together gets far less than the single hottest rank.
        let tail: u32 = counts[500..].iter().sum();
        assert!(
            counts[0] > tail,
            "rank 0 ({}) should dominate the cold half ({tail})",
            counts[0]
        );
        // Monotone-ish: the top rank beats rank 10 beats rank 100.
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[100]);
    }

    #[test]
    fn zipf_low_theta_is_near_uniform() {
        let z = Zipfian::new(100, 0.0);
        let mut rng = XorShift64::new(11);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.next_rank(&mut rng) as usize] += 1;
        }
        // Every rank appears, and no rank takes more than a few percent.
        assert!(counts.iter().all(|&c| c > 0));
        assert!(*counts.iter().max().unwrap() < 5_000);
    }

    #[test]
    fn zipf_keys_scatter_and_stay_in_range() {
        let z = Zipfian::new(512, 0.9);
        let mut rng = XorShift64::new(3);
        let keys: Vec<u64> = (0..1_000).map(|_| z.next_key(&mut rng)).collect();
        assert!(keys.iter().all(|&k| k < 512));
        // The hottest scattered key must not be key 0 or 511 by construction
        // alone; what matters is that both halves of the domain are hit.
        assert!(keys.iter().any(|&k| k < 256));
        assert!(keys.iter().any(|&k| k >= 256));
    }

    #[test]
    fn zipf_is_deterministic_for_a_fixed_seed() {
        let z = Zipfian::new(4096, 0.75);
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..1_000 {
            assert_eq!(z.next_key(&mut a), z.next_key(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "zipf theta")]
    fn zipf_rejects_theta_one() {
        let _ = Zipfian::new(10, 1.0);
    }
}
