//! Fast non-cryptographic RNGs for workload generation.
//!
//! The benchmark threads draw one random key per operation; `rand`'s
//! thread-local generators are excellent but their per-call overhead and
//! TLS access are measurable at the tens-of-millions-of-ops/sec the paper
//! operates at. These generators are plain structs the harness embeds in
//! each worker's stack frame.

/// SplitMix64 — used to seed other generators and for one-off mixing.
///
/// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014). Passes BigCrush when used as a stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an arbitrary seed (0 is fine).
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xorshift64* — the per-thread workload generator.
///
/// Period 2^64 − 1; state must be non-zero, which [`XorShift64::new`]
/// guarantees by seeding through SplitMix64.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator with a de-correlated per-thread seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut state = sm.next_u64();
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        XorShift64 { state }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift reduction
    /// (no modulo on the hot path; the slight non-uniformity for huge bounds
    /// is irrelevant for workload keys).
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniformly random bool — the paper's "flip a coin to decide whether
    /// to insert or delete".
    #[inline]
    pub fn coin(&mut self) -> bool {
        // Use the high bit: low bits of xorshift* are weakest.
        self.next_u64() >> 63 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_vector() {
        // First outputs for seed 0, cross-checked against the reference
        // implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn xorshift_nonzero_state_even_from_zero_seed() {
        let mut x = XorShift64::new(0);
        // Must not get stuck at zero.
        let a = x.next_u64();
        let b = x.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn bounded_stays_in_range_and_covers() {
        let mut x = XorShift64::new(42);
        let bound = 10;
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = x.next_bounded(bound);
            assert!(v < bound);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn coin_is_roughly_fair() {
        let mut x = XorShift64::new(7);
        let heads: u32 = (0..100_000).map(|_| u32::from(x.coin())).sum();
        // 3-sigma bound for Binomial(1e5, 0.5) is about 474.
        assert!((heads as i64 - 50_000).abs() < 1_500, "heads = {heads}");
    }

    #[test]
    fn distinct_seeds_decorrelate() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let matches = (0..1_000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }
}
