//! A minimal HTTP/1.x request parser and response writer — just enough
//! for the `epic-serve` daemon to speak to curl, browsers, and a
//! Prometheus scraper in the offline container (no hyper, same
//! philosophy as the hand-rolled [`crate::json`]).
//!
//! Scope (deliberate): `HTTP/1.0`–`HTTP/1.1` request lines, header
//! fields, and a `Content-Length` body. No chunked transfer encoding,
//! no keep-alive (every response carries `Connection: close`), no TLS.
//! Every limit is **strict and enforced while reading**, so a hostile
//! or broken client can neither balloon memory (oversized request
//! lines, header floods, giant bodies) nor wedge the parser: malformed
//! input always comes back as an [`HttpError`] that maps to a 4xx/5xx
//! status via [`HttpError::status`], never a panic.

use std::io::{BufRead, Read, Write};

/// Hard ceilings applied while a request is being read.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes in the request line (method + target + version).
    pub max_request_line: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
    /// Maximum bytes in one header line.
    pub max_header_line: usize,
    /// Maximum declared `Content-Length`.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_headers: 64,
            max_header_line: 8 * 1024,
            max_body: 1024 * 1024,
        }
    }
}

/// Why a request could not be parsed. [`HttpError::status`] maps each
/// variant to the response status the server should send back (where a
/// response is possible at all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection before sending any request byte —
    /// a clean close, not a protocol error (no response owed).
    Closed,
    /// Syntactically invalid request (bad request line, bad header,
    /// truncated body, conflicting `Content-Length`, ...) → 400.
    Malformed(String),
    /// Request line or a header line exceeded its byte limit → 431.
    LineTooLong,
    /// More header fields than [`Limits::max_headers`] → 431.
    TooManyHeaders,
    /// Declared `Content-Length` exceeds [`Limits::max_body`] → 413.
    BodyTooLarge,
    /// A feature this parser deliberately does not speak (an HTTP
    /// version other than 1.0/1.1, `Transfer-Encoding`) → 501.
    Unsupported(String),
    /// Socket-level I/O error (includes read timeouts) — no response.
    Io(String),
}

impl HttpError {
    /// The response status for this error, or `None` when the
    /// connection is beyond responding (closed / I/O error).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Closed | HttpError::Io(_) => None,
            HttpError::Malformed(_) => Some(400),
            HttpError::LineTooLong | HttpError::TooManyHeaders => Some(431),
            HttpError::BodyTooLarge => Some(413),
            HttpError::Unsupported(_) => Some(501),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed before a request"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::LineTooLong => write!(f, "request or header line over the byte limit"),
            HttpError::TooManyHeaders => write!(f, "too many header fields"),
            HttpError::BodyTooLarge => write!(f, "declared body exceeds the limit"),
            HttpError::Unsupported(what) => write!(f, "unsupported: {what}"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, uppercase as received (`GET`, `POST`, ...).
    pub method: String,
    /// The request target, e.g. `/jobs/3` (always starts with `/`).
    pub target: String,
    /// `HTTP/1.0` or `HTTP/1.1`.
    pub version: String,
    /// Header fields in receive order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lowercased;
    /// the first occurrence wins).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or a 400-mapping error.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("body is not valid UTF-8".into()))
    }

    /// Reads and parses one request from `r` under `limits`.
    ///
    /// Enforcement happens *while reading*: a line is abandoned as soon
    /// as it passes its cap, and the body is only ever read up to the
    /// (already validated) declared length.
    pub fn parse<R: BufRead>(r: &mut R, limits: &Limits) -> Result<Request, HttpError> {
        let line = match read_line_capped(r, limits.max_request_line)? {
            None => return Err(HttpError::Closed),
            Some(line) => line,
        };
        let mut parts = line.split(' ').filter(|p| !p.is_empty());
        let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
            _ => {
                return Err(HttpError::Malformed(format!(
                    "request line is not 'METHOD target HTTP/x.y': {line:?}"
                )))
            }
        };
        if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
            return Err(HttpError::Malformed(format!("bad method token {method:?}")));
        }
        if !target.starts_with('/') {
            return Err(HttpError::Malformed(format!(
                "target must start with '/': {target:?}"
            )));
        }
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(HttpError::Unsupported(format!("version {version:?}")));
        }
        let mut headers: Vec<(String, String)> = Vec::new();
        let mut content_length: Option<usize> = None;
        loop {
            let line = read_line_capped(r, limits.max_header_line)?
                .ok_or_else(|| HttpError::Malformed("EOF inside the header block".into()))?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= limits.max_headers {
                return Err(HttpError::TooManyHeaders);
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::Malformed(format!("header without ':': {line:?}")))?;
            if name.is_empty() || !name.bytes().all(is_token_byte) {
                return Err(HttpError::Malformed(format!("bad header name {name:?}")));
            }
            let name = name.to_ascii_lowercase();
            let value = value.trim().to_string();
            match name.as_str() {
                "transfer-encoding" => {
                    return Err(HttpError::Unsupported("transfer-encoding".into()))
                }
                "content-length" => {
                    let n: usize = value.parse().map_err(|_| {
                        HttpError::Malformed(format!("bad content-length {value:?}"))
                    })?;
                    if n > limits.max_body {
                        return Err(HttpError::BodyTooLarge);
                    }
                    // A repeated Content-Length must agree with itself.
                    if content_length.is_some_and(|prev| prev != n) {
                        return Err(HttpError::Malformed(
                            "conflicting content-length headers".into(),
                        ));
                    }
                    content_length = Some(n);
                }
                _ => {}
            }
            headers.push((name, value));
        }
        let mut body = vec![0u8; content_length.unwrap_or(0)];
        if !body.is_empty() {
            r.read_exact(&mut body).map_err(|e| match e.kind() {
                std::io::ErrorKind::UnexpectedEof => {
                    HttpError::Malformed("body shorter than content-length".into())
                }
                _ => HttpError::Io(e.to_string()),
            })?;
        }
        Ok(Request {
            method: method.to_string(),
            target: target.to_string(),
            version: version.to_string(),
            headers,
            body,
        })
    }
}

/// RFC 7230 `tchar` (the subset we accept in header names).
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'!' | b'#' | b'$' | b'%')
}

/// Reads one CRLF- (or bare-LF-) terminated line of at most `cap`
/// bytes. `Ok(None)` = clean EOF before any byte. The read stops at
/// `cap + 1` bytes, so an unbounded line cannot balloon memory.
fn read_line_capped<R: BufRead>(r: &mut R, cap: usize) -> Result<Option<String>, HttpError> {
    let mut buf: Vec<u8> = Vec::new();
    let n = r
        .by_ref()
        .take(cap as u64 + 1)
        .read_until(b'\n', &mut buf)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        return Err(if buf.len() > cap {
            HttpError::LineTooLong
        } else {
            HttpError::Malformed("line truncated mid-stream".into())
        });
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(Some(s)),
        Err(_) => Err(HttpError::Malformed("non-UTF-8 bytes in a line".into())),
    }
}

/// The reason phrase for the status codes this workspace emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A response under construction. [`Response::write_to`] renders the
/// status line, the headers, `Content-Length`, and `Connection: close`
/// (this server speaks one request per connection, by design).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (content-length/connection are added on write).
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with `status`.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(status).with_content("text/plain; charset=utf-8", body.into().into_bytes())
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response::new(status).with_content("application/json", body.into().into_bytes())
    }

    /// A `text/html` response.
    pub fn html(status: u16, body: impl Into<String>) -> Response {
        Response::new(status).with_content("text/html; charset=utf-8", body.into().into_bytes())
    }

    /// Sets the body and its content type.
    pub fn with_content(mut self, content_type: &str, body: Vec<u8>) -> Response {
        self.headers
            .push(("content-type".to_string(), content_type.to_string()));
        self.body = body;
        self
    }

    /// Appends a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The error response owed for `e`, or `None` when the connection
    /// is past responding.
    pub fn for_error(e: &HttpError) -> Option<Response> {
        e.status().map(|s| Response::text(s, format!("{e}\n")))
    }

    /// Writes the full response (status line, headers, body) to `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "content-length: {}\r\n", self.body.len())?;
        write!(w, "connection: close\r\n\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }

    /// The response as bytes (what `write_to` would emit).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out).expect("Vec write cannot fail");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_bytes(bytes: &[u8]) -> Result<Request, HttpError> {
        Request::parse(&mut std::io::BufReader::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_bytes(b"GET /jobs/3 HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/jobs/3");
        assert_eq!(req.version, "HTTP/1.1");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let req = parse_bytes(
            b"POST /jobs HTTP/1.1\r\ncontent-length: 19\r\n\r\n{\"experiment\": \"x\"}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body_str().unwrap(), "{\"experiment\": \"x\"}");
    }

    #[test]
    fn bare_lf_lines_parse_too() {
        let req = parse_bytes(b"GET / HTTP/1.0\nHost: y\n\n").unwrap();
        assert_eq!(req.version, "HTTP/1.0");
        assert_eq!(req.header("host"), Some("y"));
    }

    #[test]
    fn eof_before_any_byte_is_closed_not_malformed() {
        assert_eq!(parse_bytes(b"").unwrap_err(), HttpError::Closed);
    }

    #[test]
    fn limits_map_to_responses() {
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
        assert_eq!(
            parse_bytes(long_target.as_bytes()).unwrap_err(),
            HttpError::LineTooLong
        );
        let flood: String = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..70).map(|i| format!("h{i}: v\r\n")).collect::<String>()
        );
        assert_eq!(
            parse_bytes(flood.as_bytes()).unwrap_err(),
            HttpError::TooManyHeaders
        );
        assert_eq!(
            parse_bytes(b"POST / HTTP/1.1\r\ncontent-length: 9999999\r\n\r\n").unwrap_err(),
            HttpError::BodyTooLarge
        );
        assert_eq!(HttpError::LineTooLong.status(), Some(431));
        assert_eq!(HttpError::BodyTooLarge.status(), Some(413));
        assert_eq!(HttpError::Closed.status(), None);
    }

    #[test]
    fn response_renders_status_line_headers_and_body() {
        let bytes = Response::json(200, "{\"ok\": true}").to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("content-length: 12\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\": true}"));
    }

    #[test]
    fn error_responses_exist_exactly_when_a_status_does() {
        for (err, want) in [
            (HttpError::Malformed("x".into()), Some(400)),
            (HttpError::Unsupported("y".into()), Some(501)),
            (HttpError::Io("z".into()), None),
            (HttpError::Closed, None),
        ] {
            assert_eq!(Response::for_error(&err).map(|r| r.status), want);
        }
    }
}
