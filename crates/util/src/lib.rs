//! # epic-util
//!
//! Shared low-level utilities for the *epochs-too-epic* workspace: cache-line
//! padding, exponential backoff, spin locks (ticket and sequence locks), fast
//! non-cryptographic RNGs, system topology discovery, monotonic timing, and
//! streaming statistics.
//!
//! Everything in this crate is `no_std`-style in spirit (no allocation on hot
//! paths) but uses `std` for threads and time.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod backoff;
pub mod cache_padded;
pub mod http;
pub mod json;
pub mod locks;
pub mod rng;
pub mod stats;
pub mod tidslots;
pub mod timeutil;
pub mod topology;

pub use backoff::Backoff;
pub use cache_padded::CachePadded;
pub use json::Json;
pub use locks::{SeqLock, TicketLock};
pub use rng::{SplitMix64, XorShift64, Zipfian};
pub use stats::{LogHistogram, OnlineStats};
pub use tidslots::TidSlots;
pub use timeutil::{busy_spin_ns, now_ns, Clock};
pub use topology::Topology;
