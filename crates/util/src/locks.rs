//! Spin-lock primitives used by the data structures and allocator models.
//!
//! * [`TicketLock`] — FIFO-fair spin lock; used per-node by the DGT external
//!   BST (David, Guerraoui, Trigonakis) exactly as in the paper's appendix D,
//!   and by the jemalloc model's arena bins when configured for fairness.
//! * [`SeqLock`] — a sequence lock / optimistic version lock; used by the
//!   OCC tree (Bronson-style optimistic validation) and the ABtree's
//!   structural-change coordination.
//!
//! Both are written with the acquire/release discipline from *Rust Atomics
//! and Locks* ch. 4: the lock acquisition is an acquire operation, the release
//! a release operation, and readers of seqlock-protected data validate with
//! acquire fences on both sides.

use crate::backoff::Backoff;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};

/// A FIFO ticket spin lock.
///
/// Threads take a ticket with a relaxed fetch-add and spin until the grant
/// counter reaches their ticket. Fairness matters in the allocator models:
/// an unfair lock would let one flushing thread starve others and *hide* the
/// convoy the paper measures.
///
/// ```
/// use epic_util::TicketLock;
/// let lock = TicketLock::new();
/// lock.lock();
/// // ... critical section ...
/// lock.unlock();
/// ```
#[derive(Debug, Default)]
pub struct TicketLock {
    next_ticket: AtomicU32,
    now_serving: AtomicU32,
}

impl TicketLock {
    /// Creates an unlocked ticket lock.
    pub const fn new() -> Self {
        TicketLock {
            next_ticket: AtomicU32::new(0),
            now_serving: AtomicU32::new(0),
        }
    }

    /// Acquires the lock, spinning with backoff until granted.
    pub fn lock(&self) {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let backoff = Backoff::new();
        while self.now_serving.load(Ordering::Acquire) != ticket {
            backoff.snooze();
        }
    }

    /// Attempts to acquire the lock without waiting.
    ///
    /// Returns `true` on success. Implemented as a CAS on the ticket counter
    /// conditioned on the lock currently being free, which preserves FIFO
    /// order among successful acquirers.
    pub fn try_lock(&self) -> bool {
        let serving = self.now_serving.load(Ordering::Relaxed);
        self.next_ticket
            .compare_exchange(
                serving,
                serving.wrapping_add(1),
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Releases the lock. Must only be called by the current holder.
    pub fn unlock(&self) {
        // The holder is the only writer of `now_serving`, so a plain
        // load/store pair is race-free; release publishes the critical
        // section to the next ticket holder.
        let next = self.now_serving.load(Ordering::Relaxed).wrapping_add(1);
        self.now_serving.store(next, Ordering::Release);
    }

    /// True if some thread currently holds the lock (racy; advisory only).
    pub fn is_locked(&self) -> bool {
        self.next_ticket.load(Ordering::Relaxed) != self.now_serving.load(Ordering::Relaxed)
    }

    /// Runs `f` with the lock held.
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.lock();
        let r = f();
        self.unlock();
        r
    }
}

/// A sequence lock: an even version means "unlocked/stable", odd means a
/// writer is mid-update.
///
/// Readers snapshot the version, read the protected data, then validate the
/// version is unchanged and even. Writers bump to odd, mutate, bump to even.
/// This is the optimistic-validation primitive of the Bronson-style OCC tree.
#[derive(Debug, Default)]
pub struct SeqLock {
    version: AtomicU64,
}

/// Snapshot of a [`SeqLock`] version for later validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqSnapshot(u64);

impl SeqSnapshot {
    /// True if the snapshot was taken while a writer held the lock; readers
    /// must retry instead of validating against it.
    pub fn is_write_locked(self) -> bool {
        self.0 & 1 == 1
    }

    /// The raw version word (for diagnostics).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl SeqLock {
    /// Creates a seqlock at version 0 (unlocked).
    pub const fn new() -> Self {
        SeqLock {
            version: AtomicU64::new(0),
        }
    }

    /// Takes an optimistic read snapshot. If a writer is active this spins
    /// until it finishes so the returned snapshot is always even.
    pub fn read_begin(&self) -> SeqSnapshot {
        let backoff = Backoff::new();
        loop {
            let v = self.version.load(Ordering::Acquire);
            if v & 1 == 0 {
                return SeqSnapshot(v);
            }
            backoff.snooze();
        }
    }

    /// Takes a snapshot without waiting out writers; may be odd.
    pub fn read_begin_nowait(&self) -> SeqSnapshot {
        SeqSnapshot(self.version.load(Ordering::Acquire))
    }

    /// Validates that no write happened since `snap` was taken.
    ///
    /// The acquire fence orders the preceding data reads before the version
    /// re-read (see *Rust Atomics and Locks* ch. 3 on fences).
    pub fn read_validate(&self, snap: SeqSnapshot) -> bool {
        fence(Ordering::Acquire);
        self.version.load(Ordering::Relaxed) == snap.0 && snap.0 & 1 == 0
    }

    /// Acquires the write lock, spinning until successful.
    pub fn write_lock(&self) -> SeqSnapshot {
        let backoff = Backoff::new();
        loop {
            let v = self.version.load(Ordering::Relaxed);
            if v & 1 == 0
                && self
                    .version
                    .compare_exchange_weak(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return SeqSnapshot(v);
            }
            backoff.snooze();
        }
    }

    /// Attempts to acquire the write lock only if the version still equals
    /// `expected` (i.e. no intervening write since the caller's snapshot).
    pub fn try_upgrade(&self, expected: SeqSnapshot) -> bool {
        expected.0 & 1 == 0
            && self
                .version
                .compare_exchange(
                    expected.0,
                    expected.0 + 1,
                    Ordering::Acquire,
                    Ordering::Relaxed,
                )
                .is_ok()
    }

    /// Attempts the write lock without spinning.
    pub fn try_write_lock(&self) -> Option<SeqSnapshot> {
        let v = self.version.load(Ordering::Relaxed);
        if v & 1 == 0
            && self
                .version
                .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            Some(SeqSnapshot(v))
        } else {
            None
        }
    }

    /// Releases the write lock, publishing the writes.
    pub fn write_unlock(&self) {
        let v = self.version.load(Ordering::Relaxed);
        debug_assert_eq!(v & 1, 1, "write_unlock without write_lock");
        self.version.store(v + 1, Ordering::Release);
    }

    /// Current raw version (for invariant checks and tests).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// True if a writer currently holds the lock.
    pub fn is_write_locked(&self) -> bool {
        self.version.load(Ordering::Relaxed) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn ticket_lock_mutual_exclusion() {
        let lock = Arc::new(TicketLock::new());
        let counter = Arc::new(StdAtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    lock.lock();
                    // Non-atomic-style increment through two atomic ops:
                    // exposes lost updates if mutual exclusion is broken.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.unlock();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 40_000);
    }

    #[test]
    fn ticket_try_lock() {
        let lock = TicketLock::new();
        assert!(lock.try_lock());
        assert!(lock.is_locked());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(!lock.is_locked());
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn ticket_with_helper() {
        let lock = TicketLock::new();
        let out = lock.with(|| 7);
        assert_eq!(out, 7);
        assert!(!lock.is_locked());
    }

    #[test]
    fn seqlock_basic_protocol() {
        let sl = SeqLock::new();
        let snap = sl.read_begin();
        assert!(sl.read_validate(snap));

        let w = sl.write_lock();
        assert_eq!(w.raw(), 0);
        assert!(sl.is_write_locked());
        assert!(
            !sl.read_validate(snap),
            "stale snapshot must not validate during write"
        );
        sl.write_unlock();
        assert!(
            !sl.read_validate(snap),
            "stale snapshot must not validate after write"
        );

        let snap2 = sl.read_begin();
        assert_eq!(snap2.raw(), 2);
        assert!(sl.read_validate(snap2));
    }

    #[test]
    fn seqlock_try_upgrade_detects_interference() {
        let sl = SeqLock::new();
        let snap = sl.read_begin();
        // Another writer slips in.
        let w = sl.write_lock();
        let _ = w;
        sl.write_unlock();
        assert!(!sl.try_upgrade(snap));
        // Fresh snapshot upgrades fine.
        let snap = sl.read_begin();
        assert!(sl.try_upgrade(snap));
        sl.write_unlock();
    }

    #[test]
    fn seqlock_readers_never_observe_torn_writes() {
        // Writer keeps a two-word invariant (a == b); readers validate they
        // never see it broken under a validated snapshot.
        struct Shared {
            lock: SeqLock,
            a: StdAtomicU64,
            b: StdAtomicU64,
        }
        let s = Arc::new(Shared {
            lock: SeqLock::new(),
            a: StdAtomicU64::new(0),
            b: StdAtomicU64::new(0),
        });
        let writer = {
            let s = Arc::clone(&s);
            thread::spawn(move || {
                for i in 1..=20_000u64 {
                    s.lock.write_lock();
                    s.a.store(i, Ordering::Relaxed);
                    s.b.store(i, Ordering::Relaxed);
                    s.lock.write_unlock();
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let s = Arc::clone(&s);
                thread::spawn(move || {
                    for _ in 0..20_000 {
                        let snap = s.lock.read_begin();
                        let a = s.a.load(Ordering::Relaxed);
                        let b = s.b.load(Ordering::Relaxed);
                        if s.lock.read_validate(snap) {
                            assert_eq!(a, b, "validated read saw torn write");
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }
}
