//! Spin-locked bins for the Je/Tc models.
//!
//! jemalloc's `malloc_mutex` spins (`je_malloc_mutex_lock_slow` is where
//! the paper measures 39.8% of total *cycles* at 192 threads — waiting
//! burns CPU, it does not park). A parking mutex would hide that cost on
//! an oversubscribed machine, so the models guard their bins with a FIFO
//! ticket spin lock: waiters stay on-CPU (spinning, then yielding), and
//! the flush convoy consumes compute exactly as it does under real
//! jemalloc.

use epic_util::TicketLock;
use std::cell::UnsafeCell;

/// A `T` guarded by a ticket spin lock.
pub struct SpinBin<T> {
    lock: TicketLock,
    data: UnsafeCell<T>,
}

// SAFETY: access to `data` is mediated by `lock` (see `BinGuard`).
unsafe impl<T: Send> Sync for SpinBin<T> {}
unsafe impl<T: Send> Send for SpinBin<T> {}

impl<T> SpinBin<T> {
    /// Wraps `data`.
    pub fn new(data: T) -> Self {
        SpinBin {
            lock: TicketLock::new(),
            data: UnsafeCell::new(data),
        }
    }

    /// Acquires the bin, spinning. Returns a guard that releases on drop.
    pub fn lock(&self) -> BinGuard<'_, T> {
        self.lock.lock();
        BinGuard { bin: self }
    }

    /// Attempts to acquire without waiting.
    pub fn try_lock(&self) -> Option<BinGuard<'_, T>> {
        if self.lock.try_lock() {
            Some(BinGuard { bin: self })
        } else {
            None
        }
    }
}

/// RAII guard for [`SpinBin`].
pub struct BinGuard<'a, T> {
    bin: &'a SpinBin<T>,
}

impl<T> std::ops::Deref for BinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard holds the lock.
        unsafe { &*self.bin.data.get() }
    }
}

impl<T> std::ops::DerefMut for BinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: guard holds the lock exclusively.
        unsafe { &mut *self.bin.data.get() }
    }
}

impl<T> Drop for BinGuard<'_, T> {
    fn drop(&mut self) {
        self.bin.lock.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn guard_gives_exclusive_access() {
        let bin = Arc::new(SpinBin::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let bin = Arc::clone(&bin);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        let mut g = bin.lock();
                        *g += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*bin.lock(), 40_000);
    }

    #[test]
    fn try_lock_contended() {
        let bin = SpinBin::new(5u32);
        let g = bin.lock();
        assert!(bin.try_lock().is_none());
        drop(g);
        assert_eq!(*bin.try_lock().expect("free now"), 5);
    }
}
