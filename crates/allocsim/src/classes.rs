//! Size-class table.
//!
//! A condensed version of jemalloc's small size classes, covering the node
//! sizes the paper's data structures allocate: 64 B (OCC tree nodes), 240 B
//! (ABtree nodes) and everything in between. Requests above the largest
//! class are unsupported (the workloads never make them) and panic loudly.

/// The user-visible size of each class, ascending.
pub const CLASS_SIZES: [usize; 16] = [
    16, 32, 48, 64, 80, 96, 128, 160, 192, 256, 320, 384, 512, 1024, 2048, 4096,
];

/// Number of size classes.
pub const NUM_CLASSES: usize = CLASS_SIZES.len();

/// Largest allocation the pool models serve.
pub const MAX_SIZE: usize = CLASS_SIZES[NUM_CLASSES - 1];

/// Maps a byte size to its class index (smallest class ≥ `size`).
///
/// # Panics
/// If `size` is 0 or exceeds [`MAX_SIZE`].
#[inline]
pub fn class_of(size: usize) -> usize {
    assert!(size > 0, "zero-size allocation");
    // Linear scan: 16 entries, branch-predicted, and callers cache the
    // result per node type anyway.
    for (i, &c) in CLASS_SIZES.iter().enumerate() {
        if size <= c {
            return i;
        }
    }
    panic!("allocation of {size} bytes exceeds max size class {MAX_SIZE}");
}

/// The byte size served by class `class`.
#[inline]
pub fn size_of_class(class: usize) -> usize {
    CLASS_SIZES[class]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_sorted_and_unique() {
        for w in CLASS_SIZES.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn class_of_exact_and_between() {
        assert_eq!(class_of(1), 0);
        assert_eq!(class_of(16), 0);
        assert_eq!(class_of(17), 1);
        assert_eq!(class_of(64), 3);
        // The ABtree's 240-byte node lands in the 256 class.
        assert_eq!(size_of_class(class_of(240)), 256);
        assert_eq!(class_of(MAX_SIZE), NUM_CLASSES - 1);
    }

    #[test]
    fn class_roundtrip() {
        for c in 0..NUM_CLASSES {
            assert_eq!(class_of(size_of_class(c)), c);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds max size class")]
    fn oversized_panics() {
        class_of(MAX_SIZE + 1);
    }

    #[test]
    #[should_panic(expected = "zero-size")]
    fn zero_panics() {
        class_of(0);
    }
}
