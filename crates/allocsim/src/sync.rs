//! Atomics used by [`crate::BlockHeader`]'s intrusive links, swappable
//! for model checking.
//!
//! Normal builds re-export `std::sync::atomic` — zero cost. Under
//! `RUSTFLAGS="--cfg epic_model_check"` the same names come from
//! `epic_check::atomic`, whose shims are `#[repr(transparent)]`
//! wrappers over the `std` types — same size and alignment, so the
//! `HEADER_SIZE == 32` layout assertion holds under both cfgs.

#[cfg(not(epic_model_check))]
pub use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize};

#[cfg(epic_model_check)]
pub use epic_check::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize};

pub use std::sync::atomic::Ordering;
