//! Recycled scratch segments for the reclamation schemes' scan paths.
//!
//! A hazard/era scan needs a short-lived snapshot buffer (published
//! pointers, reserved eras, acknowledgment flags). Allocating that buffer
//! per scan charges allocator traffic to the scheme under test — exactly
//! the measurement pollution the zero-allocation retire pipeline removes.
//! A [`SegmentPool`] is a per-thread stack of recycled [`Segment`]s: the
//! first acquisition of each concurrently-live segment heap-allocates (and
//! is counted, so harnesses can assert steady state performs none); every
//! later acquisition reuses a pooled spine.

use std::ops::{Deref, DerefMut};

/// A scratch buffer of `u64` slots borrowed from a [`SegmentPool`].
///
/// Derefs to `Vec<u64>`; callers push whatever word-sized records a scan
/// needs (addresses, eras, interval halves, flags). Return it with
/// [`SegmentPool::release`] so the spine is recycled — dropping it instead
/// simply forfeits the buffer (correct, but the next acquire re-allocates).
#[derive(Debug, Default)]
pub struct Segment {
    buf: Vec<u64>,
    /// Capacity at acquire time; growth past it while borrowed is a heap
    /// allocation the pool charges at release.
    granted: usize,
}

impl Deref for Segment {
    type Target = Vec<u64>;

    fn deref(&self) -> &Vec<u64> {
        &self.buf
    }
}

impl DerefMut for Segment {
    fn deref_mut(&mut self) -> &mut Vec<u64> {
        &mut self.buf
    }
}

/// How many released segments a pool retains before letting extras drop.
/// Scans use at most a couple of segments at a time; anything beyond this
/// is a leak-shaped bug, not a workload.
const POOL_RETAIN: usize = 4;

/// A per-owner pool of recycled [`Segment`]s with heap-allocation
/// accounting. Not thread-safe: embed one per thread (the SMR layer keeps
/// one per tid).
#[derive(Debug)]
pub struct SegmentPool {
    free: Vec<Segment>,
    /// Capacity given to freshly-allocated or grown segments.
    default_cap: usize,
    /// Heap allocations (fresh segments + capacity growth) since the last
    /// [`take_heap_allocs`](Self::take_heap_allocs).
    heap_allocs: u64,
}

impl SegmentPool {
    /// A pool whose fresh segments start with `default_cap` slots.
    pub fn new(default_cap: usize) -> Self {
        SegmentPool {
            free: Vec::with_capacity(POOL_RETAIN),
            default_cap: default_cap.max(1),
            heap_allocs: 0,
        }
    }

    /// Borrows a cleared segment with capacity for at least `min_cap`
    /// slots, recycling a pooled spine when one is available. Fresh
    /// allocations and capacity growth are counted (see
    /// [`take_heap_allocs`](Self::take_heap_allocs)).
    pub fn acquire(&mut self, min_cap: usize) -> Segment {
        let mut seg = match self.free.pop() {
            Some(seg) => seg,
            None => {
                self.heap_allocs += 1;
                Segment {
                    buf: Vec::with_capacity(self.default_cap.max(min_cap)),
                    granted: 0,
                }
            }
        };
        seg.buf.clear();
        if seg.buf.capacity() < min_cap {
            self.heap_allocs += 1;
            seg.buf.reserve(min_cap - seg.buf.len());
        }
        seg.granted = seg.buf.capacity();
        seg
    }

    /// Returns a segment to the pool for reuse. A segment that grew past
    /// its granted capacity while borrowed reallocated on the heap behind
    /// the pool's back — charge it now, so the zero-allocation accounting
    /// has no blind spot (callers that can bound their need should pass
    /// the bound to [`acquire`](Self::acquire) instead).
    pub fn release(&mut self, seg: Segment) {
        if seg.buf.capacity() > seg.granted {
            self.heap_allocs += 1;
        }
        if self.free.len() < POOL_RETAIN {
            self.free.push(seg);
        }
    }

    /// Drains the heap-allocation count accumulated since the last call.
    pub fn take_heap_allocs(&mut self) -> u64 {
        std::mem::take(&mut self.heap_allocs)
    }

    /// Segments currently pooled (idle).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_acquire_release_never_allocates() {
        let mut pool = SegmentPool::new(16);
        let seg = pool.acquire(8);
        assert_eq!(pool.take_heap_allocs(), 1, "first acquire allocates");
        pool.release(seg);
        for i in 0..100u64 {
            let mut seg = pool.acquire(8);
            assert!(seg.is_empty(), "segments come back cleared");
            seg.push(i);
            pool.release(seg);
        }
        assert_eq!(pool.take_heap_allocs(), 0, "recycling must be free");
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn growth_is_counted_then_retained() {
        let mut pool = SegmentPool::new(4);
        let seg = pool.acquire(4);
        pool.release(seg);
        pool.take_heap_allocs();
        // A larger ask grows the recycled spine once...
        let seg = pool.acquire(64);
        assert!(seg.capacity() >= 64);
        pool.release(seg);
        assert_eq!(pool.take_heap_allocs(), 1);
        // ...and the grown capacity is kept for next time.
        let seg = pool.acquire(64);
        pool.release(seg);
        assert_eq!(pool.take_heap_allocs(), 0);
    }

    #[test]
    fn growth_while_borrowed_is_charged_at_release() {
        let mut pool = SegmentPool::new(4);
        let mut seg = pool.acquire(4);
        pool.take_heap_allocs();
        // The borrower outgrows what it asked for: the Vec reallocates
        // outside the pool's sight...
        seg.extend(0..64u64);
        pool.release(seg);
        // ...and the pool charges it on the way back in.
        assert_eq!(pool.take_heap_allocs(), 1);
        // The grown spine is retained, so the next borrow of that size is
        // free again.
        let mut seg = pool.acquire(64);
        seg.extend(0..64u64);
        pool.release(seg);
        assert_eq!(pool.take_heap_allocs(), 0);
    }

    #[test]
    fn concurrent_borrows_and_retain_cap() {
        let mut pool = SegmentPool::new(8);
        let segs: Vec<Segment> = (0..6).map(|_| pool.acquire(8)).collect();
        assert_eq!(pool.take_heap_allocs(), 6, "each live borrow is its own");
        for seg in segs {
            pool.release(seg);
        }
        assert_eq!(pool.pooled(), POOL_RETAIN, "extras past the cap drop");
    }
}
