//! Block headers.
//!
//! Every block handed out by the pool models is preceded by a 32-byte header
//! carrying the metadata real allocators keep in page maps or radix trees:
//! which *bin* the block belongs to (arena / central list / page — "the heap
//! to which it should be returned", paper §3.2 fn. 2), its size class, an
//! intrusive free-list link, and a 64-bit **birth era** slot that the
//! era-based SMR schemes (HE, IBR, WFE) stamp at allocation time.

use crate::sync::{AtomicU64, AtomicUsize, Ordering};
use std::ptr::NonNull;

/// Byte value debug builds write over freed user memory.
pub const POISON: u8 = 0xDE;

/// Header preceding each block's user memory. 32 bytes, 16-aligned.
#[repr(C, align(16))]
pub struct BlockHeader {
    /// Owning bin: arena index (Je), size-class index (Tc), page id (Mi),
    /// or `u32::MAX` (Sys).
    pub owner: u32,
    /// Size class index of the block.
    pub class: u32,
    /// Intrusive free-list link. Interpreted under the owning bin's lock in
    /// Je/Tc, and as a lock-free Treiber-stack link in Mi's cross-thread
    /// free list (hence atomic).
    pub next: AtomicUsize,
    /// Birth era stamped by era-based SMR schemes; untouched by the
    /// allocator models themselves except for zeroing on alloc.
    pub birth_era: AtomicU64,
    /// Retire era stamped by era-based SMR schemes at retirement. Like
    /// [`next`](Self::next), this word belongs to whoever owns the block's
    /// current lifecycle stage: it is idle while the block is live and is
    /// scratch for the retire pipeline between unlink and free (the SMR
    /// limbo lists thread themselves through `next` and keep the retired
    /// object's era interval here, so retirement needs no side allocation).
    pub retire_era: AtomicU64,
}

/// Size of the block header in bytes.
pub const HEADER_SIZE: usize = std::mem::size_of::<BlockHeader>();

const _: () = assert!(HEADER_SIZE == 32);

impl BlockHeader {
    /// Writes a fresh header in place.
    ///
    /// # Safety
    /// `hdr` must point to `HEADER_SIZE` writable bytes aligned to 16.
    pub unsafe fn init(hdr: *mut BlockHeader, owner: u32, class: u32) {
        // SAFETY: caller guarantees validity and alignment.
        unsafe {
            hdr.write(BlockHeader {
                owner,
                class,
                next: AtomicUsize::new(0),
                birth_era: AtomicU64::new(0),
                retire_era: AtomicU64::new(0),
            });
        }
    }

    /// Recovers the header pointer from a user pointer.
    ///
    /// # Safety
    /// `user` must have been produced by one of this crate's pool models
    /// (i.e. be preceded by a valid header).
    #[inline]
    pub unsafe fn from_user(user: NonNull<u8>) -> &'static BlockHeader {
        // SAFETY: models lay out [header][user]; caller guarantees origin.
        unsafe { &*(user.as_ptr().sub(HEADER_SIZE) as *const BlockHeader) }
    }

    /// The user pointer for this header.
    #[inline]
    pub fn user_ptr(&self) -> NonNull<u8> {
        // SAFETY: headers always precede a user area; the sum is non-null.
        unsafe { NonNull::new_unchecked((self as *const BlockHeader as *mut u8).add(HEADER_SIZE)) }
    }

    /// Header address as an integer key (free-list encoding).
    #[inline]
    pub fn addr(&self) -> usize {
        self as *const BlockHeader as usize
    }
}

/// Stamps the SMR birth era of a block.
///
/// # Safety
/// `user` must be a live block from one of this crate's pool models.
#[inline]
pub unsafe fn set_birth_era(user: NonNull<u8>, era: u64) {
    // SAFETY: forwarded to caller.
    unsafe { BlockHeader::from_user(user) }
        .birth_era
        .store(era, Ordering::Release);
}

/// Reads the SMR birth era of a block.
///
/// # Safety
/// `user` must be a live block from one of this crate's pool models.
#[inline]
pub unsafe fn birth_era(user: NonNull<u8>) -> u64 {
    // SAFETY: forwarded to caller.
    unsafe { BlockHeader::from_user(user) }
        .birth_era
        .load(Ordering::Acquire)
}

/// Stamps the SMR retire era of a block.
///
/// # Safety
/// `user` must be a live block from one of this crate's pool models.
#[inline]
pub unsafe fn set_retire_era(user: NonNull<u8>, era: u64) {
    // SAFETY: forwarded to caller.
    unsafe { BlockHeader::from_user(user) }
        .retire_era
        .store(era, Ordering::Release);
}

/// Reads the SMR retire era of a block.
///
/// # Safety
/// `user` must be a live block from one of this crate's pool models.
#[inline]
pub unsafe fn retire_era(user: NonNull<u8>) -> u64 {
    // SAFETY: forwarded to caller.
    unsafe { BlockHeader::from_user(user) }
        .retire_era
        .load(Ordering::Acquire)
}

/// An intrusive singly-linked free list of blocks, threaded through
/// [`BlockHeader::next`]. **Not** thread-safe: callers hold the owning bin's
/// lock (Je/Tc) or have exclusive ownership (thread caches, Mi local lists).
#[derive(Debug, Default)]
pub struct FreeList {
    head: usize,
    len: usize,
}

impl FreeList {
    /// An empty list.
    pub const fn new() -> Self {
        FreeList { head: 0, len: 0 }
    }

    /// Number of blocks on the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no blocks are on the list.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes a block.
    ///
    /// # Safety
    /// `hdr` must be a valid, exclusively-owned block header not currently
    /// on any list.
    #[inline]
    pub unsafe fn push(&mut self, hdr: &BlockHeader) {
        hdr.next.store(self.head, Ordering::Relaxed);
        self.head = hdr.addr();
        self.len += 1;
    }

    /// Pops a block, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<&'static BlockHeader> {
        if self.head == 0 {
            return None;
        }
        // SAFETY: `head` was stored by `push` from a valid header and the
        // list owner has exclusive access.
        let hdr = unsafe { &*(self.head as *const BlockHeader) };
        self.head = hdr.next.load(Ordering::Relaxed);
        self.len -= 1;
        Some(hdr)
    }

    /// Takes an entire chained list (from a Treiber-stack swap) and adopts
    /// it, counting its length.
    ///
    /// # Safety
    /// `head` must be the head of a valid, exclusively-owned chain.
    pub unsafe fn adopt_chain(&mut self, head: usize) {
        let mut cursor = head;
        while cursor != 0 {
            // SAFETY: chain validity guaranteed by caller.
            let hdr = unsafe { &*(cursor as *const BlockHeader) };
            let next = hdr.next.load(Ordering::Relaxed);
            // SAFETY: hdr is exclusively ours now.
            unsafe { self.push(hdr) };
            cursor = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::alloc::{alloc, dealloc, Layout};

    fn raw_block() -> (*mut u8, Layout) {
        let layout = Layout::from_size_align(HEADER_SIZE + 64, 16).unwrap();
        // SAFETY: valid layout.
        let p = unsafe { alloc(layout) };
        assert!(!p.is_null());
        (p, layout)
    }

    #[test]
    fn header_user_roundtrip() {
        let (p, layout) = raw_block();
        // SAFETY: p is valid for the header.
        unsafe { BlockHeader::init(p as *mut BlockHeader, 3, 5) };
        // SAFETY: p points at an initialized header.
        let hdr = unsafe { &*(p as *const BlockHeader) };
        let user = hdr.user_ptr();
        // SAFETY: user came from a model-style layout.
        let hdr2 = unsafe { BlockHeader::from_user(user) };
        assert_eq!(hdr2.owner, 3);
        assert_eq!(hdr2.class, 5);
        assert!(std::ptr::eq(hdr, hdr2));
        // SAFETY: allocated above with the same layout.
        unsafe { dealloc(p, layout) };
    }

    #[test]
    fn birth_era_accessors() {
        let (p, layout) = raw_block();
        // SAFETY: as above.
        unsafe {
            BlockHeader::init(p as *mut BlockHeader, 0, 0);
            let user = (*(p as *const BlockHeader)).user_ptr();
            set_birth_era(user, 42);
            assert_eq!(birth_era(user), 42);
            dealloc(p, layout);
        }
    }

    #[test]
    fn retire_era_accessors_and_init() {
        let (p, layout) = raw_block();
        // SAFETY: as above.
        unsafe {
            BlockHeader::init(p as *mut BlockHeader, 0, 0);
            let user = (*(p as *const BlockHeader)).user_ptr();
            assert_eq!(retire_era(user), 0, "fresh headers zero the retire era");
            set_retire_era(user, 99);
            assert_eq!(retire_era(user), 99);
            assert_eq!(birth_era(user), 0, "the two era words are independent");
            dealloc(p, layout);
        }
    }

    #[test]
    fn freelist_lifo_order() {
        let blocks: Vec<(*mut u8, Layout)> = (0..3).map(|_| raw_block()).collect();
        let mut list = FreeList::new();
        for (i, &(p, _)) in blocks.iter().enumerate() {
            // SAFETY: valid fresh blocks.
            unsafe {
                BlockHeader::init(p as *mut BlockHeader, i as u32, 0);
                list.push(&*(p as *const BlockHeader));
            }
        }
        assert_eq!(list.len(), 3);
        let owners: Vec<u32> = std::iter::from_fn(|| list.pop().map(|h| h.owner)).collect();
        assert_eq!(owners, vec![2, 1, 0], "LIFO order");
        assert!(list.is_empty());
        assert!(list.pop().is_none());
        for (p, layout) in blocks {
            // SAFETY: allocated in this test.
            unsafe { dealloc(p, layout) };
        }
    }

    #[test]
    fn adopt_chain_counts() {
        let blocks: Vec<(*mut u8, Layout)> = (0..4).map(|_| raw_block()).collect();
        // Build a manual chain: b0 -> b1 -> b2 -> b3 -> null.
        for (i, &(p, _)) in blocks.iter().enumerate() {
            // SAFETY: fresh blocks.
            unsafe { BlockHeader::init(p as *mut BlockHeader, i as u32, 0) };
        }
        for w in blocks.windows(2) {
            // SAFETY: initialized above.
            let (a, b) = unsafe {
                (
                    &*(w[0].0 as *const BlockHeader),
                    &*(w[1].0 as *const BlockHeader),
                )
            };
            a.next.store(b.addr(), Ordering::Relaxed);
        }
        // SAFETY: last block terminates the chain.
        unsafe { &*(blocks[3].0 as *const BlockHeader) }
            .next
            .store(0, Ordering::Relaxed);

        let mut list = FreeList::new();
        // SAFETY: chain is valid and exclusively ours.
        unsafe { list.adopt_chain(blocks[0].0 as usize) };
        assert_eq!(list.len(), 4);
        for (p, layout) in blocks {
            // SAFETY: allocated in this test.
            unsafe { dealloc(p, layout) };
        }
    }
}
