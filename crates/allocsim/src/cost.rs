//! Cost model: calibrated stand-in for the NUMA effects of the paper's
//! 4-socket testbed.
//!
//! On the paper's machine the expensive part of a remote batch free is (a)
//! genuine lock contention on arena/central-list mutexes and (b) per-object
//! bookkeeping on cache lines homed on other sockets. (a) is real in this
//! build. (b) does not exist on a 1-socket container, so each model calls
//! [`CostModel::remote_object`] once per remote-owned object processed while
//! the bin lock is held; the call busy-spins for a configurable number of
//! nanoseconds in the measured range of cross-socket cache-to-cache
//! transfers. Setting the model to [`CostModel::zero`] turns the simulation
//! off (used by unit tests and the `sys` baseline).

use epic_util::timeutil::busy_spin_ns;

/// Tunable costs applied inside the allocator models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Busy-spin per remote-owned object processed during a flush/remote
    /// free, *while holding the bin lock*. Models a cross-socket coherence
    /// miss (~100–400 ns on 4-socket Xeons).
    pub remote_penalty_ns: u64,
    /// Busy-spin per object on the allocation refill path when the refill
    /// batch came from a remote bin (much rarer; usually local).
    pub refill_penalty_ns: u64,
    /// Arenas per logical CPU for the jemalloc model (jemalloc default: 4).
    pub arenas_per_cpu: usize,
    /// Logical CPUs the model should assume (defaults to detected count;
    /// machine presets override it to mimic the paper's testbeds).
    pub assumed_cpus: usize,
}

impl CostModel {
    /// Calibrated default for this container (see DESIGN.md §2): 600 ns
    /// per remote object reproduces the paper's %free/%flush/%lock shape
    /// at this machine's thread counts.
    pub fn default_for_machine() -> Self {
        let cpus = epic_util::Topology::detect().logical_cpus;
        CostModel {
            remote_penalty_ns: 600,
            refill_penalty_ns: 0,
            arenas_per_cpu: 4,
            assumed_cpus: cpus,
        }
    }

    /// All penalties off; structure (locks, caches, flush batching) still
    /// fully active.
    pub fn zero() -> Self {
        CostModel {
            remote_penalty_ns: 0,
            refill_penalty_ns: 0,
            arenas_per_cpu: 4,
            assumed_cpus: epic_util::Topology::detect().logical_cpus,
        }
    }

    /// Number of arenas the jemalloc model creates.
    pub fn num_arenas(&self) -> usize {
        (self.arenas_per_cpu * self.assumed_cpus).max(1)
    }

    /// Applies the remote-object penalty (no-op when zero).
    #[inline]
    pub fn remote_object(&self) {
        busy_spin_ns(self.remote_penalty_ns);
    }

    /// Applies the refill penalty (no-op when zero).
    #[inline]
    pub fn refill_object(&self) {
        busy_spin_ns(self.refill_penalty_ns);
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::default_for_machine()
    }
}

/// Presets mimicking the machines of the paper's Appendix E, used by the
/// `fig15_16_machine_presets` bench. They change the *shape parameters*
/// (arena count, remote cost) — thread counts still scale to this host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachinePreset {
    /// The main 4-socket 192-HW-thread Intel Xeon 8160 testbed.
    Intel4x192,
    /// Appendix E.1: 4-socket 144-core Intel machine.
    Intel4x144,
    /// Appendix E.2: 2-socket 256-core AMD machine (chiplet design: remote
    /// penalty lower than 4-socket Intel, more arenas).
    Amd2x256,
    /// This container, as detected.
    Host,
}

impl MachinePreset {
    /// The cost model for this preset.
    pub fn cost_model(self) -> CostModel {
        match self {
            MachinePreset::Intel4x192 => CostModel {
                remote_penalty_ns: 300,
                refill_penalty_ns: 0,
                arenas_per_cpu: 4,
                assumed_cpus: 192,
            },
            MachinePreset::Intel4x144 => CostModel {
                remote_penalty_ns: 280,
                refill_penalty_ns: 0,
                arenas_per_cpu: 4,
                assumed_cpus: 144,
            },
            MachinePreset::Amd2x256 => CostModel {
                remote_penalty_ns: 180,
                refill_penalty_ns: 0,
                arenas_per_cpu: 4,
                assumed_cpus: 256,
            },
            MachinePreset::Host => CostModel::default_for_machine(),
        }
    }

    /// Display name used in bench output.
    pub fn name(self) -> &'static str {
        match self {
            MachinePreset::Intel4x192 => "intel-4s-192t",
            MachinePreset::Intel4x144 => "intel-4s-144t",
            MachinePreset::Amd2x256 => "amd-2s-256t",
            MachinePreset::Host => "host",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_free() {
        let c = CostModel::zero();
        let t = epic_util::Clock::start();
        for _ in 0..1000 {
            c.remote_object();
        }
        assert!(
            t.elapsed_ns() < 10_000_000,
            "zero cost model should be ~free"
        );
    }

    #[test]
    fn penalty_spins() {
        let c = CostModel {
            remote_penalty_ns: 10_000,
            ..CostModel::zero()
        };
        let t = epic_util::Clock::start();
        c.remote_object();
        assert!(t.elapsed_ns() >= 10_000);
    }

    #[test]
    fn arena_count_follows_preset() {
        assert_eq!(MachinePreset::Intel4x192.cost_model().num_arenas(), 768);
        assert_eq!(MachinePreset::Amd2x256.cost_model().num_arenas(), 1024);
        assert!(MachinePreset::Host.cost_model().num_arenas() >= 4);
    }

    #[test]
    fn preset_names_unique() {
        let names = [
            MachinePreset::Intel4x192.name(),
            MachinePreset::Intel4x144.name(),
            MachinePreset::Amd2x256.name(),
            MachinePreset::Host.name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
