//! Passthrough model: straight to the Rust global allocator.
//!
//! A baseline for microbenches and a sanity harness for the data-structure
//! tests (it has no caches, so every SMR bug surfaces immediately under
//! tools like ASan instead of being masked by pooling). Keeps the same
//! header layout so `dealloc` can recover the layout, and counts live bytes
//! for peak-memory reporting.

use crate::block::{BlockHeader, HEADER_SIZE};
use crate::classes::{class_of, size_of_class};
use crate::stats::{AllocSnapshot, PerThread, ThreadAllocStats};
use crate::{PoolAllocator, Tid};

use std::alloc::{alloc, dealloc, Layout};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global-allocator passthrough. See module docs.
pub struct SysModel {
    counters: PerThread,
    live_bytes: AtomicUsize,
    peak_bytes: AtomicUsize,
}

impl SysModel {
    /// Builds the passthrough model.
    pub fn new(max_threads: usize) -> Self {
        SysModel {
            counters: PerThread::new(max_threads),
            live_bytes: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
        }
    }

    fn layout_for(class: usize) -> Layout {
        Layout::from_size_align(HEADER_SIZE + size_of_class(class), 16).expect("block layout")
    }
}

impl PoolAllocator for SysModel {
    fn alloc(&self, tid: Tid, size: usize) -> NonNull<u8> {
        let class = class_of(size);
        let counters = self.counters.get(tid);
        let timed = counters.on_alloc();
        let clock = timed.then(epic_util::Clock::start);

        let layout = Self::layout_for(class);
        // SAFETY: non-zero layout.
        let raw = unsafe { alloc(layout) };
        assert!(!raw.is_null(), "system allocation failed");
        // SAFETY: fresh allocation large enough for the header.
        unsafe { BlockHeader::init(raw as *mut BlockHeader, u32::MAX, class as u32) };

        let live = self.live_bytes.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
        self.peak_bytes.fetch_max(live, Ordering::Relaxed);

        if let Some(c) = clock {
            counters.add_sampled_alloc_ns(c.elapsed_ns());
        }
        // SAFETY: raw + HEADER_SIZE is within the allocation and non-null.
        unsafe { NonNull::new_unchecked(raw.add(HEADER_SIZE)) }
    }

    fn dealloc(&self, tid: Tid, ptr: NonNull<u8>) {
        let counters = self.counters.get(tid);
        let timed = counters.on_dealloc();
        let clock = timed.then(epic_util::Clock::start);

        // SAFETY: ptr was produced by this allocator per the contract.
        let hdr = unsafe { BlockHeader::from_user(ptr) };
        let class = hdr.class as usize;
        #[cfg(debug_assertions)]
        // SAFETY: freed user area is dead.
        unsafe {
            std::ptr::write_bytes(ptr.as_ptr(), crate::block::POISON, size_of_class(class));
        }
        let layout = Self::layout_for(class);
        self.live_bytes.fetch_sub(layout.size(), Ordering::Relaxed);
        // SAFETY: block was allocated with exactly this layout in `alloc`.
        unsafe { dealloc(ptr.as_ptr().sub(HEADER_SIZE), layout) };
        if let Some(c) = clock {
            counters.add_sampled_free_ns(c.elapsed_ns());
        }
    }

    fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            totals: self.counters.sum(),
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed),
            chunks: 0,
        }
    }

    fn thread_stats(&self, tid: Tid) -> ThreadAllocStats {
        self.counters.get(tid).snapshot()
    }

    fn peak_bytes(&self) -> usize {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    fn name(&self) -> &'static str {
        "sys"
    }

    fn reset_stats(&self) {
        self.counters.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_peak_tracking() {
        let m = SysModel::new(1);
        let p = m.alloc(0, 64);
        let peak_with_one = m.peak_bytes();
        assert!(peak_with_one >= 64 + HEADER_SIZE);
        m.dealloc(0, p);
        // Peak is sticky.
        assert_eq!(m.peak_bytes(), peak_with_one);
        let s = m.thread_stats(0);
        assert_eq!(s.allocs, 1);
        assert_eq!(s.deallocs, 1);
    }

    #[test]
    fn many_blocks_distinct() {
        let m = SysModel::new(1);
        let ptrs: Vec<_> = (0..100).map(|_| m.alloc(0, 48)).collect();
        let set: std::collections::HashSet<usize> =
            ptrs.iter().map(|p| p.as_ptr() as usize).collect();
        assert_eq!(set.len(), 100);
        for p in ptrs {
            m.dealloc(0, p);
        }
    }
}
