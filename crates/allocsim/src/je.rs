//! The jemalloc-style model.
//!
//! Reproduces the free-path structure of jemalloc 5.0.1 described in §3.2 of
//! the paper:
//!
//! * allocation and free fast paths hit a bounded per-thread cache
//!   ([`crate::tcache::ThreadCache`]);
//! * when a free overflows the cache bin, the oldest 3/4 of the bin is
//!   flushed (`je_tcache_bin_flush_small`): repeatedly take the owning
//!   arena of the first remaining object, **lock that arena**, sweep the
//!   whole remaining batch returning every object owned by that arena, and
//!   continue until the batch is empty;
//! * there are `4 × ncpu` arenas, each a mutex-guarded set of per-class free
//!   lists plus a bump cursor over chunks;
//! * a thread allocates from its *home* arena (`tid mod arenas`), so an
//!   object freed by a different thread is "remote" and its return crosses
//!   to another thread's arena — with the lock held, which is where the
//!   paper measures 39.8% of total time at 192 threads.

use crate::block::{BlockHeader, FreeList, HEADER_SIZE};
use crate::chunks::{BumpCursor, ChunkStore};
use crate::classes::{class_of, size_of_class, NUM_CLASSES};
use crate::cost::CostModel;
use crate::stats::{AllocSnapshot, PerThread, ThreadAllocStats};
use crate::tcache::{ThreadCache, TidSlots, DEFAULT_TCACHE_CAP};
use crate::{PoolAllocator, Tid};

use crate::spinbin::{BinGuard, SpinBin};
use epic_util::{CachePadded, Clock};
use std::ptr::NonNull;

/// One arena: per-class intrusive free lists plus a bump cursor. Always
/// accessed under the owning mutex.
struct Arena {
    bins: [FreeList; NUM_CLASSES],
    bump: BumpCursor,
}

impl Arena {
    fn new() -> Self {
        Arena {
            bins: std::array::from_fn(|_| FreeList::new()),
            bump: BumpCursor::empty(),
        }
    }
}

/// Per-thread state: the cache plus a reusable flush scratch buffer.
struct JeThread {
    cache: ThreadCache,
    scratch: Vec<&'static BlockHeader>,
}

/// jemalloc-style pool allocator. See module docs.
pub struct JeModel {
    store: ChunkStore,
    arenas: Box<[CachePadded<SpinBin<Arena>>]>,
    threads: TidSlots<JeThread>,
    counters: PerThread,
    cost: CostModel,
    tcache_cap: usize,
    refill_batch: usize,
    /// `Some(q)`: the *incremental-flush* variant — an overflow returns
    /// only the oldest `q` blocks instead of 3/4 of the bin. This is the
    /// allocator-side fix the paper's footnote 3 leaves as future work
    /// ("modify the allocator itself to be sensitive to the possibility of
    /// batch frees coming from the reclamation algorithm"): critical
    /// sections shrink from O(bin) to O(q), and the bin stays near
    /// capacity so subsequent allocations reuse locally — recovering most
    /// of amortized freeing's benefit without touching the SMR scheme
    /// (`ablation_allocator_fix`).
    flush_quantum: Option<usize>,
}

impl JeModel {
    /// Builds the model with the default thread-cache capacity.
    pub fn new(max_threads: usize, cost: CostModel) -> Self {
        Self::with_tcache_cap(max_threads, cost, DEFAULT_TCACHE_CAP)
    }

    /// Builds the model with an explicit thread-cache capacity (the
    /// `ablation_tcache_cap` bench sweeps this).
    pub fn with_tcache_cap(max_threads: usize, cost: CostModel, tcache_cap: usize) -> Self {
        Self::build(max_threads, cost, tcache_cap, None)
    }

    /// Builds the **incremental-flush** variant: overflows return only the
    /// oldest `quantum` blocks (see the `flush_quantum` field docs).
    pub fn with_flush_quantum(
        max_threads: usize,
        cost: CostModel,
        tcache_cap: usize,
        quantum: usize,
    ) -> Self {
        assert!(quantum >= 1, "flush quantum must free at least one block");
        Self::build(max_threads, cost, tcache_cap, Some(quantum))
    }

    fn build(
        max_threads: usize,
        cost: CostModel,
        tcache_cap: usize,
        flush_quantum: Option<usize>,
    ) -> Self {
        let num_arenas = cost.num_arenas();
        let arenas = (0..num_arenas)
            .map(|_| CachePadded::new(SpinBin::new(Arena::new())))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        JeModel {
            store: ChunkStore::new(),
            arenas,
            threads: TidSlots::new_with(max_threads, |_| JeThread {
                cache: ThreadCache::new(tcache_cap),
                scratch: Vec::with_capacity(tcache_cap),
            }),
            counters: PerThread::new(max_threads),
            cost,
            tcache_cap,
            refill_batch: (tcache_cap / 2).max(1),
            flush_quantum,
        }
    }

    /// Number of arenas (4 × assumed CPUs by default).
    pub fn num_arenas(&self) -> usize {
        self.arenas.len()
    }

    /// The configured per-bin thread-cache capacity.
    pub fn tcache_cap(&self) -> usize {
        self.tcache_cap
    }

    /// The arena a thread allocates from.
    #[inline]
    fn home_arena(&self, tid: Tid) -> u32 {
        (tid % self.arenas.len()) as u32
    }

    /// Locks an arena, charging measured wait time to `tid` when contended.
    /// Waiting SPINS (see [`crate::spinbin`]) — modelling
    /// `je_malloc_mutex_lock_slow`, whose burned cycles are the paper's
    /// `% lock` column.
    fn lock_arena(&self, tid: Tid, arena: u32) -> BinGuard<'_, Arena> {
        let m = &*self.arenas[arena as usize];
        if let Some(g) = m.try_lock() {
            return g;
        }
        let t = Clock::start();
        let g = m.lock();
        self.counters.get(tid).add_lock_wait_ns(t.elapsed_ns());
        g
    }

    /// Refills `tid`'s cache bin for `class` from its home arena and returns
    /// one block. Called with the cache bin empty.
    fn refill(&self, tid: Tid, class: usize) -> &'static BlockHeader {
        let home = self.home_arena(tid);
        let stride = HEADER_SIZE + size_of_class(class);
        let counters = self.counters.get(tid);
        counters.refill();

        // SAFETY: tid-exclusivity per the PoolAllocator contract.
        let thread = unsafe { self.threads.get_mut(tid) };
        let mut arena = self.lock_arena(tid, home);
        let mut last: Option<&'static BlockHeader> = None;
        for _ in 0..self.refill_batch {
            let hdr = match arena.bins[class].pop() {
                Some(h) => h,
                None => {
                    let raw = arena.bump.carve(&self.store, stride);
                    // SAFETY: `carve` returned `stride` fresh bytes, aligned
                    // to the chunk alignment (every stride is 16-multiple).
                    unsafe { BlockHeader::init(raw as *mut BlockHeader, home, class as u32) };
                    // SAFETY: just initialized.
                    unsafe { &*(raw as *const BlockHeader) }
                }
            };
            self.cost.refill_object();
            if let Some(prev) = last.replace(hdr) {
                thread.cache.push_refill(class, prev);
            }
        }
        last.expect("refill_batch >= 1")
    }

    /// `je_tcache_bin_flush_small`: returns the oldest 3/4 of the bin to the
    /// owning arenas, sweeping the whole remaining batch per arena lock —
    /// or, in the incremental variant, only the oldest `flush_quantum`
    /// blocks.
    fn flush(&self, tid: Tid, class: usize) {
        let counters = self.counters.get(tid);
        let flush_clock = Clock::start();
        let home = self.home_arena(tid);

        // SAFETY: tid-exclusivity per the PoolAllocator contract.
        let thread = unsafe { self.threads.get_mut(tid) };
        thread.scratch.clear();
        match self.flush_quantum {
            Some(q) => thread.cache.drain_n(class, q, &mut thread.scratch),
            None => thread.cache.drain_flush(class, &mut thread.scratch),
        }
        let flushed = thread.scratch.len() as u64;

        while !thread.scratch.is_empty() {
            let target = thread.scratch[0].owner;
            let remote = target != home;
            let mut arena = self.lock_arena(tid, target);
            // Sweep the entire remaining batch while holding the lock —
            // exactly jemalloc's loop, and exactly why flushes are long.
            let mut kept = 0;
            for i in 0..thread.scratch.len() {
                let hdr = thread.scratch[i];
                if hdr.owner == target {
                    // SAFETY: block came from dealloc; exclusively ours.
                    unsafe { arena.bins[class].push(hdr) };
                    if remote {
                        counters.remote(1);
                        self.cost.remote_object();
                    }
                } else {
                    thread.scratch[kept] = hdr;
                    kept += 1;
                }
            }
            drop(arena);
            thread.scratch.truncate(kept);
        }
        counters.flush(flushed);
        counters.add_flush_ns(flush_clock.elapsed_ns());
    }
}

impl PoolAllocator for JeModel {
    fn alloc(&self, tid: Tid, size: usize) -> NonNull<u8> {
        let class = class_of(size);
        let counters = self.counters.get(tid);
        let timed = counters.on_alloc();
        let clock = timed.then(Clock::start);

        // SAFETY: tid-exclusivity per the PoolAllocator contract.
        let thread = unsafe { self.threads.get_mut(tid) };
        let hdr = match thread.cache.pop(class) {
            Some(h) => {
                counters.cache_hit();
                h
            }
            None => self.refill(tid, class),
        };
        if let Some(c) = clock {
            counters.add_sampled_alloc_ns(c.elapsed_ns());
        }
        hdr.user_ptr()
    }

    fn dealloc(&self, tid: Tid, ptr: NonNull<u8>) {
        let counters = self.counters.get(tid);
        let timed = counters.on_dealloc();
        let clock = timed.then(Clock::start);

        // SAFETY: ptr was produced by this allocator per the contract.
        let hdr = unsafe { BlockHeader::from_user(ptr) };
        let class = hdr.class as usize;
        #[cfg(debug_assertions)]
        // SAFETY: the user area of a freed block is dead; poison it.
        unsafe {
            std::ptr::write_bytes(ptr.as_ptr(), crate::block::POISON, size_of_class(class));
        }

        // SAFETY: tid-exclusivity per the PoolAllocator contract.
        let thread = unsafe { self.threads.get_mut(tid) };
        let overflow = thread.cache.push(class, hdr);
        if let Some(c) = clock {
            counters.add_sampled_free_ns(c.elapsed_ns());
        }
        if overflow {
            self.flush(tid, class);
        }
    }

    fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            totals: self.counters.sum(),
            peak_bytes: self.store.total_bytes(),
            chunks: self.store.chunk_count(),
        }
    }

    fn thread_stats(&self, tid: Tid) -> ThreadAllocStats {
        self.counters.get(tid).snapshot()
    }

    fn peak_bytes(&self) -> usize {
        self.store.total_bytes()
    }

    fn name(&self) -> &'static str {
        if self.flush_quantum.is_some() {
            "je_incr"
        } else {
            "je"
        }
    }

    fn reset_stats(&self) {
        self.counters.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn model(threads: usize) -> JeModel {
        JeModel::with_tcache_cap(threads, CostModel::zero(), 16)
    }

    #[test]
    fn alloc_returns_writable_memory() {
        let m = model(1);
        let p = m.alloc(0, 100);
        // SAFETY: 100 bytes requested -> class 128, all writable.
        unsafe { std::ptr::write_bytes(p.as_ptr(), 0x5A, 100) };
        m.dealloc(0, p);
    }

    #[test]
    fn reuse_is_lifo_from_cache() {
        let m = model(1);
        let p1 = m.alloc(0, 64);
        m.dealloc(0, p1);
        let p2 = m.alloc(0, 64);
        assert_eq!(p1, p2, "LIFO cache should return the same block");
    }

    #[test]
    fn distinct_classes_do_not_alias() {
        let m = model(1);
        let a = m.alloc(0, 64);
        let b = m.alloc(0, 256);
        assert_ne!(a, b);
        // SAFETY: both blocks live; write disjoint patterns.
        unsafe {
            std::ptr::write_bytes(a.as_ptr(), 1, 64);
            std::ptr::write_bytes(b.as_ptr(), 2, 256);
            assert_eq!(
                *a.as_ptr(),
                1,
                "class-64 block clobbered by class-256 write"
            );
        }
        m.dealloc(0, a);
        m.dealloc(0, b);
    }

    #[test]
    fn flush_triggers_past_capacity() {
        let m = model(1);
        // Allocate far more than tcache capacity, then free all: pushes must
        // overflow and flush.
        let ptrs: Vec<_> = (0..64).map(|_| m.alloc(0, 64)).collect();
        for p in ptrs {
            m.dealloc(0, p);
        }
        let s = m.thread_stats(0);
        assert!(s.flushes > 0, "expected at least one flush, stats: {s:?}");
        assert!(s.flushed_objects > 0);
    }

    #[test]
    fn remote_free_counted_cross_thread() {
        // Two threads on different home arenas; blocks allocated by tid 0,
        // freed by tid 1 in bulk -> remote frees.
        let m = Arc::new(model(2));
        let ptrs: Vec<usize> = (0..64).map(|_| m.alloc(0, 64).as_ptr() as usize).collect();
        let m2 = Arc::clone(&m);
        std::thread::spawn(move || {
            for p in ptrs {
                m2.dealloc(1, NonNull::new(p as *mut u8).unwrap());
            }
        })
        .join()
        .unwrap();
        let s = m.thread_stats(1);
        assert!(
            s.remote_freed > 0,
            "cross-thread frees must count as remote: {s:?}"
        );
    }

    #[test]
    fn local_free_not_remote() {
        let m = model(1);
        let ptrs: Vec<_> = (0..64).map(|_| m.alloc(0, 64)).collect();
        for p in ptrs {
            m.dealloc(0, p);
        }
        let s = m.thread_stats(0);
        assert_eq!(s.remote_freed, 0, "self-owned blocks are local: {s:?}");
    }

    #[test]
    fn peak_bytes_monotone_and_bounded_under_reuse() {
        let m = model(1);
        // Steady-state churn: capacity-bounded live set -> chunk usage
        // plateaus.
        for _ in 0..10_000 {
            let p = m.alloc(0, 64);
            m.dealloc(0, p);
        }
        let after_churn = m.peak_bytes();
        for _ in 0..10_000 {
            let p = m.alloc(0, 64);
            m.dealloc(0, p);
        }
        assert_eq!(
            m.peak_bytes(),
            after_churn,
            "steady churn must not grow memory"
        );
    }

    #[test]
    fn concurrent_stress_no_block_aliasing() {
        // 4 threads allocate, stamp, verify and free; any double-handout
        // shows up as a stomped stamp.
        let m = Arc::new(JeModel::with_tcache_cap(4, CostModel::zero(), 16));
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut live: Vec<NonNull<u8>> = Vec::new();
                    for round in 0..2_000u64 {
                        let p = m.alloc(tid, 64);
                        // SAFETY: fresh 64-byte block.
                        unsafe {
                            (p.as_ptr() as *mut u64).write(tid as u64 ^ round);
                        }
                        live.push(p);
                        if live.len() > 8 {
                            let victim = live.swap_remove((round % 8) as usize);
                            m.dealloc(tid, victim);
                        }
                        // Verify our stamps are intact (no aliasing).
                        for (i, q) in live.iter().enumerate() {
                            // SAFETY: q is live and ours.
                            let v = unsafe { (q.as_ptr() as *const u64).read() };
                            assert_eq!(v & !0xFFFF, (tid as u64) & !0xFFFF, "block {i} stomped");
                        }
                    }
                    for p in live {
                        m.dealloc(tid, p);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = m.snapshot();
        assert_eq!(snap.totals.allocs, 4 * 2_000);
        assert_eq!(snap.totals.deallocs, 4 * 2_000);
    }

    #[test]
    fn incremental_flush_moves_one_quantum() {
        let m = JeModel::with_flush_quantum(1, CostModel::zero(), 16, 4);
        assert_eq!(m.name(), "je_incr");
        // Free well past capacity: every overflow must move exactly the
        // 4-block quantum, never 3/4 of the bin.
        let ptrs: Vec<_> = (0..32).map(|_| m.alloc(0, 64)).collect();
        for p in ptrs {
            m.dealloc(0, p);
        }
        let s = m.thread_stats(0);
        assert!(s.flushes >= 1, "{s:?}");
        assert_eq!(
            s.flushed_objects,
            4 * s.flushes,
            "each flush is exactly one quantum: {s:?}"
        );
    }

    #[test]
    fn incremental_flush_keeps_bin_warm() {
        // Batch-free far past capacity, then allocate: the bin kept
        // (cap + 1 - q) blocks after each overflow, so allocations reuse
        // locally instead of refilling from the arena.
        let m = JeModel::with_flush_quantum(1, CostModel::zero(), 16, 4);
        let ptrs: Vec<_> = (0..64).map(|_| m.alloc(0, 64)).collect();
        let refills_before = m.thread_stats(0).refills;
        for p in ptrs {
            m.dealloc(0, p);
        }
        for _ in 0..13 {
            // Accounting-only: blocks stay live; chunk memory is owned by m.
            let _ = m.alloc(0, 64);
        }
        let s = m.thread_stats(0);
        assert_eq!(
            s.refills, refills_before,
            "warm bin must serve allocations: {s:?}"
        );
    }

    #[test]
    fn quantum_flushes_are_frequent_but_small() {
        let grad = JeModel::with_flush_quantum(1, CostModel::zero(), 16, 4);
        let orig = JeModel::with_tcache_cap(1, CostModel::zero(), 16);
        for m in [&grad, &orig] {
            let ptrs: Vec<_> = (0..256).map(|_| m.alloc(0, 64)).collect();
            for p in ptrs {
                m.dealloc(0, p);
            }
        }
        let (g, o) = (grad.thread_stats(0), orig.thread_stats(0));
        assert!(
            g.flushes > o.flushes,
            "incremental overflows more often: {g:?} vs {o:?}"
        );
        let g_per = g.flushed_objects as f64 / g.flushes as f64;
        let o_per = o.flushed_objects as f64 / o.flushes as f64;
        assert!(
            g_per < o_per,
            "but each flush is much smaller: {g_per:.1} vs {o_per:.1} objects/flush"
        );
    }

    #[test]
    fn flush_scratch_is_recycled_not_reallocated() {
        // The flush scratch is part of the hot free path: it must be
        // reused via clear() against its pre-reserved capacity, never
        // regrown, or flush storms would charge allocator-internal heap
        // traffic to the workload under test.
        let m = model(1);
        // SAFETY: single-threaded test.
        let cap0 = unsafe { m.threads.get_mut(0) }.scratch.capacity();
        assert!(cap0 >= m.tcache_cap(), "scratch pre-reserves a full bin");
        for _ in 0..32 {
            let ptrs: Vec<_> = (0..64).map(|_| m.alloc(0, 64)).collect();
            for p in ptrs {
                m.dealloc(0, p);
            }
        }
        assert!(m.thread_stats(0).flushes > 0, "churn must overflow the bin");
        // SAFETY: single-threaded test.
        let cap1 = unsafe { m.threads.get_mut(0) }.scratch.capacity();
        assert_eq!(cap1, cap0, "flush scratch regrown on the hot path");
    }

    #[test]
    fn reset_stats_keeps_memory() {
        let m = model(1);
        let p = m.alloc(0, 64);
        m.dealloc(0, p);
        let bytes = m.peak_bytes();
        m.reset_stats();
        assert_eq!(m.thread_stats(0).allocs, 0);
        assert_eq!(m.peak_bytes(), bytes);
    }
}
