//! # epic-alloc
//!
//! A real concurrent pool allocator with three interchangeable *free-path
//! models* reproducing the allocator designs the paper studies (§2, §3.2,
//! Appendix B):
//!
//! * [`JeModel`] — jemalloc-style: bounded per-thread caches per size class;
//!   overflow flushes ~3/4 of the bin, returning each object to its owning
//!   **arena** (one of 4×ncpu) under that arena's mutex, scanning the whole
//!   flush batch while holding the lock — the exact structure of
//!   `je_tcache_bin_flush_small` whose cost Table 1 of the paper dissects.
//! * [`TcModel`] — tcmalloc-style: per-thread caches backed by one **global
//!   central free list per size class**, each under a mutex; flushes move
//!   batches to the central list, so all threads flushing the same size class
//!   serialize on one lock (worse than jemalloc, matching Table 3).
//! * [`MiModel`] — mimalloc-style: **per-page free lists**; a remote free is
//!   a single CAS push onto the page's cross-thread list, so contention only
//!   occurs when two threads free to the *same page* simultaneously — which
//!   is why mimalloc sidesteps the RBF problem (Table 3).
//!
//! All models share a [`ChunkStore`] substrate: memory is carved out of
//! large chunks that are only unmapped when the allocator is dropped, and the
//! running total of chunk bytes is the **peak memory** metric of Figures 1,
//! 5 and 10.
//!
//! ## Cost model
//!
//! The paper ran on a 4-socket Xeon where returning an object to a remote
//! socket's arena costs a coherence miss (hundreds of ns). This container has
//! 2 cores and 1 socket, so [`CostModel`] adds a calibrated busy-spin per
//! *remote* object processed while the bin lock is held. Lock contention
//! itself is real (parking_lot mutexes). See DESIGN.md §2 for the
//! substitution argument.
//!
//! ## Safety
//!
//! Blocks handed out by [`PoolAllocator::alloc`] stay mapped until the
//! allocator is dropped, so a use-after-free caused by a buggy reclamation
//! scheme reads stale memory rather than faulting. Debug builds poison freed
//! blocks with `0xDE` so logical corruption is loud.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod block;
pub mod chunks;
pub mod classes;
pub mod cost;
pub mod je;
pub mod mi;
pub mod segpool;
pub mod spinbin;
pub mod stats;
pub mod sync;
pub mod sys;
pub mod tc;
pub mod tcache;

pub use block::BlockHeader;
pub use chunks::ChunkStore;
pub use classes::{class_of, size_of_class, NUM_CLASSES};
pub use cost::{CostModel, MachinePreset};
pub use je::JeModel;
pub use mi::MiModel;
pub use segpool::{Segment, SegmentPool};
pub use stats::{AllocSnapshot, ThreadAllocStats};
pub use sys::SysModel;
pub use tc::TcModel;

use std::ptr::NonNull;
use std::sync::Arc;

/// Thread identifier: dense indices `0..max_threads` assigned by the caller
/// (the SMR registry hands these out).
pub type Tid = usize;

/// The allocator interface the data structures and SMR schemes program
/// against.
///
/// Implementations are [`JeModel`], [`TcModel`], [`MiModel`] and the
/// passthrough [`SysModel`]. All methods take the caller's [`Tid`]; per-thread
/// fast paths are keyed by it, and **a given tid must only ever be used from
/// one thread at a time**.
pub trait PoolAllocator: Send + Sync {
    /// Allocates `size` bytes, returning a pointer to uninitialized user
    /// memory. `size` must be ≤ the largest size class.
    fn alloc(&self, tid: Tid, size: usize) -> NonNull<u8>;

    /// Returns a block previously obtained from [`alloc`](Self::alloc) on
    /// this allocator.
    ///
    /// The pointer must come from this allocator and must not be freed twice
    /// (checked by poisoning in debug builds).
    fn dealloc(&self, tid: Tid, ptr: NonNull<u8>);

    /// Aggregated statistics across all threads.
    fn snapshot(&self) -> AllocSnapshot;

    /// Statistics for one thread.
    fn thread_stats(&self, tid: Tid) -> ThreadAllocStats;

    /// Total bytes of chunk memory ever obtained from the OS — the paper's
    /// *peak memory* metric (chunks are never returned until drop).
    fn peak_bytes(&self) -> usize;

    /// Human-readable model name ("je", "tc", "mi", "sys").
    fn name(&self) -> &'static str;

    /// Resets per-thread and global counters (not memory) between trials.
    fn reset_stats(&self);
}

/// Which allocator model to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocatorKind {
    /// jemalloc-style arenas + thread caches.
    Je,
    /// The incremental-flush jemalloc variant: overflows return a small
    /// quantum of blocks instead of 3/4 of the bin — the allocator-side
    /// fix the paper's footnote 3 proposes as future work
    /// (`ablation_allocator_fix` quantifies it).
    JeIncr,
    /// tcmalloc-style central free lists + thread caches.
    Tc,
    /// mimalloc-style per-page free lists.
    Mi,
    /// Passthrough to the Rust global allocator (baseline).
    Sys,
}

/// Overflow quantum of the [`AllocatorKind::JeIncr`] model: small enough
/// that critical sections stay short, large enough that overflow checks
/// amortize.
pub const JE_INCR_QUANTUM: usize = 16;

impl AllocatorKind {
    /// The models of the paper's Table 3, in order.
    pub const ALL: [AllocatorKind; 3] = [AllocatorKind::Je, AllocatorKind::Tc, AllocatorKind::Mi];

    /// Parses "je" / "je_incr" / "tc" / "mi" / "sys".
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "je" | "jemalloc" => Some(AllocatorKind::Je),
            "je_incr" | "jeincr" | "je-incr" => Some(AllocatorKind::JeIncr),
            "tc" | "tcmalloc" => Some(AllocatorKind::Tc),
            "mi" | "mimalloc" => Some(AllocatorKind::Mi),
            "sys" | "system" => Some(AllocatorKind::Sys),
            _ => None,
        }
    }

    /// The model's short name.
    pub fn name(self) -> &'static str {
        match self {
            AllocatorKind::Je => "je",
            AllocatorKind::JeIncr => "je_incr",
            AllocatorKind::Tc => "tc",
            AllocatorKind::Mi => "mi",
            AllocatorKind::Sys => "sys",
        }
    }
}

/// Builds an allocator of the given kind for up to `max_threads` threads.
pub fn build_allocator(
    kind: AllocatorKind,
    max_threads: usize,
    cost: CostModel,
) -> Arc<dyn PoolAllocator> {
    build_allocator_with(kind, max_threads, cost, None)
}

/// Like [`build_allocator`] but with an explicit thread-cache capacity for
/// the Je/Tc models (`None` = their defaults). The `ablation_tcache_cap`
/// bench sweeps this.
pub fn build_allocator_with(
    kind: AllocatorKind,
    max_threads: usize,
    cost: CostModel,
    tcache_cap: Option<usize>,
) -> Arc<dyn PoolAllocator> {
    match (kind, tcache_cap) {
        (AllocatorKind::Je, Some(cap)) => {
            Arc::new(JeModel::with_tcache_cap(max_threads, cost, cap))
        }
        (AllocatorKind::Je, None) => Arc::new(JeModel::new(max_threads, cost)),
        (AllocatorKind::JeIncr, cap) => Arc::new(JeModel::with_flush_quantum(
            max_threads,
            cost,
            cap.unwrap_or(crate::tcache::DEFAULT_TCACHE_CAP),
            JE_INCR_QUANTUM,
        )),
        (AllocatorKind::Tc, Some(cap)) => {
            Arc::new(TcModel::with_tcache_cap(max_threads, cost, cap))
        }
        (AllocatorKind::Tc, None) => Arc::new(TcModel::new(max_threads, cost)),
        (AllocatorKind::Mi, _) => Arc::new(MiModel::new(max_threads, cost)),
        (AllocatorKind::Sys, _) => Arc::new(SysModel::new(max_threads)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EVERY_KIND: [AllocatorKind; 5] = [
        AllocatorKind::Je,
        AllocatorKind::JeIncr,
        AllocatorKind::Tc,
        AllocatorKind::Mi,
        AllocatorKind::Sys,
    ];

    #[test]
    fn kind_parse_roundtrip() {
        for kind in EVERY_KIND {
            assert_eq!(AllocatorKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(AllocatorKind::parse("JEMALLOC"), Some(AllocatorKind::Je));
        assert_eq!(AllocatorKind::parse("bogus"), None);
    }

    #[test]
    fn factory_builds_every_kind() {
        for kind in EVERY_KIND {
            let a = build_allocator(kind, 2, CostModel::zero());
            assert_eq!(a.name(), kind.name());
            let p = a.alloc(0, 64);
            a.dealloc(0, p);
        }
    }

    #[test]
    fn table3_field_excludes_variants() {
        // Table 3 compares the three allocators of the paper; the
        // incremental variant belongs to the ablation only.
        assert!(!AllocatorKind::ALL.contains(&AllocatorKind::JeIncr));
        assert_eq!(AllocatorKind::ALL.len(), 3);
    }
}
