//! The tcmalloc-style model.
//!
//! Per Appendix B of the paper: small objects come in size classes; each
//! class has **one global central free list protected by a lock**, plus a
//! per-thread cache. A free that overflows the thread cache moves a batch to
//! the central list; an allocation that misses the cache repopulates it from
//! the central list. "Accesses to the central free list can result in
//! substantial contention in systems with many cores" — with batch frees,
//! every flushing thread serializes on the same per-class lock, which is why
//! the TC numbers in Table 3 are even worse than JE.

use crate::block::{BlockHeader, FreeList, HEADER_SIZE};
use crate::chunks::{BumpCursor, ChunkStore};
use crate::classes::{class_of, size_of_class, NUM_CLASSES};
use crate::cost::CostModel;
use crate::stats::{AllocSnapshot, PerThread, ThreadAllocStats};
use crate::tcache::{ThreadCache, TidSlots, DEFAULT_TCACHE_CAP};
use crate::{PoolAllocator, Tid};

use crate::spinbin::{BinGuard, SpinBin};
use epic_util::{CachePadded, Clock};
use std::ptr::NonNull;

/// One central free list (per size class) with its own page-carving cursor.
struct Central {
    list: FreeList,
    bump: BumpCursor,
}

/// Per-thread state.
struct TcThread {
    cache: ThreadCache,
    scratch: Vec<&'static BlockHeader>,
}

/// tcmalloc-style pool allocator. See module docs.
pub struct TcModel {
    store: ChunkStore,
    central: Box<[CachePadded<SpinBin<Central>>]>,
    threads: TidSlots<TcThread>,
    counters: PerThread,
    cost: CostModel,
    refill_batch: usize,
}

impl TcModel {
    /// Builds the model with the default thread-cache capacity.
    pub fn new(max_threads: usize, cost: CostModel) -> Self {
        Self::with_tcache_cap(max_threads, cost, DEFAULT_TCACHE_CAP)
    }

    /// Builds the model with an explicit thread-cache capacity.
    pub fn with_tcache_cap(max_threads: usize, cost: CostModel, tcache_cap: usize) -> Self {
        let central = (0..NUM_CLASSES)
            .map(|_| {
                CachePadded::new(SpinBin::new(Central {
                    list: FreeList::new(),
                    bump: BumpCursor::empty(),
                }))
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        TcModel {
            store: ChunkStore::new(),
            central,
            threads: TidSlots::new_with(max_threads, |_| TcThread {
                cache: ThreadCache::new(tcache_cap),
                scratch: Vec::with_capacity(tcache_cap),
            }),
            counters: PerThread::new(max_threads),
            cost,
            refill_batch: (tcache_cap / 2).max(1),
        }
    }

    fn lock_central(&self, tid: Tid, class: usize) -> BinGuard<'_, Central> {
        let m = &*self.central[class];
        if let Some(g) = m.try_lock() {
            return g;
        }
        let t = Clock::start();
        let g = m.lock();
        self.counters.get(tid).add_lock_wait_ns(t.elapsed_ns());
        g
    }

    fn refill(&self, tid: Tid, class: usize) -> &'static BlockHeader {
        let stride = HEADER_SIZE + size_of_class(class);
        let counters = self.counters.get(tid);
        counters.refill();

        // SAFETY: tid-exclusivity per the PoolAllocator contract.
        let thread = unsafe { self.threads.get_mut(tid) };
        let mut central = self.lock_central(tid, class);
        let mut last: Option<&'static BlockHeader> = None;
        for _ in 0..self.refill_batch {
            let hdr = match central.list.pop() {
                Some(h) => h,
                None => {
                    let raw = central.bump.carve(&self.store, stride);
                    // SAFETY: fresh `stride` bytes from the bump cursor.
                    unsafe { BlockHeader::init(raw as *mut BlockHeader, tid as u32, class as u32) };
                    // SAFETY: just initialized.
                    unsafe { &*(raw as *const BlockHeader) }
                }
            };
            self.cost.refill_object();
            if let Some(prev) = last.replace(hdr) {
                thread.cache.push_refill(class, prev);
            }
        }
        drop(central);
        let hdr = last.expect("refill_batch >= 1");
        // Transfer ownership: the last allocator of a block is its owner for
        // remote-free accounting.
        // (Relaxed write: only read racily by stats.)
        let hdr_mut = hdr as *const BlockHeader as *mut BlockHeader;
        // SAFETY: we exclusively own this block until we hand it out.
        unsafe { (*hdr_mut).owner = tid as u32 };
        hdr
    }

    /// Moves the oldest 3/4 of the cache bin to the central free list under
    /// the per-class lock, sweeping the whole batch while holding it.
    fn flush(&self, tid: Tid, class: usize) {
        let counters = self.counters.get(tid);
        let clock = Clock::start();

        // SAFETY: tid-exclusivity per the PoolAllocator contract.
        let thread = unsafe { self.threads.get_mut(tid) };
        thread.scratch.clear();
        thread.cache.drain_flush(class, &mut thread.scratch);
        let flushed = thread.scratch.len() as u64;

        let mut central = self.lock_central(tid, class);
        for hdr in thread.scratch.drain(..) {
            let remote = hdr.owner != tid as u32;
            // SAFETY: flushed blocks are exclusively ours.
            unsafe { central.list.push(hdr) };
            if remote {
                counters.remote(1);
                self.cost.remote_object();
            }
        }
        drop(central);
        counters.flush(flushed);
        counters.add_flush_ns(clock.elapsed_ns());
    }
}

impl PoolAllocator for TcModel {
    fn alloc(&self, tid: Tid, size: usize) -> NonNull<u8> {
        let class = class_of(size);
        let counters = self.counters.get(tid);
        let timed = counters.on_alloc();
        let clock = timed.then(Clock::start);

        // SAFETY: tid-exclusivity per the PoolAllocator contract.
        let thread = unsafe { self.threads.get_mut(tid) };
        let hdr = match thread.cache.pop(class) {
            Some(h) => {
                counters.cache_hit();
                // Cache-hit blocks were last owned by us already (they were
                // freed or refilled by this thread); claim ownership anyway
                // for blocks that arrived via flush-refill cycles.
                let hdr_mut = h as *const BlockHeader as *mut BlockHeader;
                // SAFETY: exclusively ours until handed out.
                unsafe { (*hdr_mut).owner = tid as u32 };
                h
            }
            None => self.refill(tid, class),
        };
        if let Some(c) = clock {
            counters.add_sampled_alloc_ns(c.elapsed_ns());
        }
        hdr.user_ptr()
    }

    fn dealloc(&self, tid: Tid, ptr: NonNull<u8>) {
        let counters = self.counters.get(tid);
        let timed = counters.on_dealloc();
        let clock = timed.then(Clock::start);

        // SAFETY: ptr was produced by this allocator per the contract.
        let hdr = unsafe { BlockHeader::from_user(ptr) };
        let class = hdr.class as usize;
        #[cfg(debug_assertions)]
        // SAFETY: freed user area is dead.
        unsafe {
            std::ptr::write_bytes(ptr.as_ptr(), crate::block::POISON, size_of_class(class));
        }

        // SAFETY: tid-exclusivity per the PoolAllocator contract.
        let thread = unsafe { self.threads.get_mut(tid) };
        let overflow = thread.cache.push(class, hdr);
        if let Some(c) = clock {
            counters.add_sampled_free_ns(c.elapsed_ns());
        }
        if overflow {
            self.flush(tid, class);
        }
    }

    fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            totals: self.counters.sum(),
            peak_bytes: self.store.total_bytes(),
            chunks: self.store.chunk_count(),
        }
    }

    fn thread_stats(&self, tid: Tid) -> ThreadAllocStats {
        self.counters.get(tid).snapshot()
    }

    fn peak_bytes(&self) -> usize {
        self.store.total_bytes()
    }

    fn name(&self) -> &'static str {
        "tc"
    }

    fn reset_stats(&self) {
        self.counters.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn model(threads: usize) -> TcModel {
        TcModel::with_tcache_cap(threads, CostModel::zero(), 16)
    }

    #[test]
    fn alloc_dealloc_roundtrip() {
        let m = model(1);
        let p = m.alloc(0, 240);
        // SAFETY: 240 -> class 256.
        unsafe { std::ptr::write_bytes(p.as_ptr(), 7, 240) };
        m.dealloc(0, p);
        let q = m.alloc(0, 240);
        assert_eq!(p, q, "LIFO reuse");
    }

    #[test]
    fn flush_scratch_is_recycled_not_reallocated() {
        // Same contract as the je model: the flush scratch is cleared and
        // reused, never regrown mid-run.
        let m = model(1);
        // SAFETY: single-threaded test.
        let cap0 = unsafe { m.threads.get_mut(0) }.scratch.capacity();
        for _ in 0..32 {
            let ptrs: Vec<_> = (0..64).map(|_| m.alloc(0, 64)).collect();
            for p in ptrs {
                m.dealloc(0, p);
            }
        }
        assert!(m.thread_stats(0).flushes > 0, "churn must overflow the bin");
        // SAFETY: single-threaded test.
        let cap1 = unsafe { m.threads.get_mut(0) }.scratch.capacity();
        assert_eq!(cap1, cap0, "flush scratch regrown on the hot path");
    }

    #[test]
    fn flush_hits_central_once_per_overflow() {
        let m = model(1);
        let ptrs: Vec<_> = (0..64).map(|_| m.alloc(0, 64)).collect();
        for p in ptrs {
            m.dealloc(0, p);
        }
        let s = m.thread_stats(0);
        assert!(s.flushes >= 1);
        // All blocks were allocated by tid 0 and freed by tid 0 -> local.
        assert_eq!(s.remote_freed, 0);
    }

    #[test]
    fn cross_thread_free_is_remote() {
        let m = Arc::new(model(2));
        let ptrs: Vec<usize> = (0..64).map(|_| m.alloc(0, 64).as_ptr() as usize).collect();
        let m2 = Arc::clone(&m);
        std::thread::spawn(move || {
            for p in ptrs {
                m2.dealloc(1, NonNull::new(p as *mut u8).unwrap());
            }
        })
        .join()
        .unwrap();
        assert!(m.thread_stats(1).remote_freed > 0);
    }

    #[test]
    fn blocks_migrate_through_central_list() {
        // Thread 0 frees enough to flush to central; thread 1 then allocates
        // and must receive recycled blocks (peak memory stays flat).
        let m = Arc::new(model(2));
        let ptrs: Vec<_> = (0..128).map(|_| m.alloc(0, 64)).collect();
        for p in ptrs {
            m.dealloc(0, p);
        }
        let peak_before = m.peak_bytes();
        let m2 = Arc::clone(&m);
        std::thread::spawn(move || {
            let got: Vec<_> = (0..64).map(|_| m2.alloc(1, 64)).collect();
            for p in got {
                m2.dealloc(1, p);
            }
        })
        .join()
        .unwrap();
        assert_eq!(
            m.peak_bytes(),
            peak_before,
            "recycling should avoid new chunks"
        );
    }

    #[test]
    fn concurrent_churn_is_sound() {
        let m = Arc::new(TcModel::with_tcache_cap(4, CostModel::zero(), 16));
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut live = Vec::new();
                    for i in 0..2_000u64 {
                        let p = m.alloc(tid, 128);
                        // SAFETY: fresh block.
                        unsafe { (p.as_ptr() as *mut u64).write(u64::MAX - i) };
                        live.push(p);
                        if live.len() > 4 {
                            let v = live.remove(0);
                            m.dealloc(tid, v);
                        }
                    }
                    for p in live {
                        m.dealloc(tid, p);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let t = m.snapshot().totals;
        assert_eq!(t.allocs, t.deallocs);
    }
}
