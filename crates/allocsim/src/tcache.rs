//! Thread caches: the bounded per-thread free buffers at the heart of the
//! RBF problem.
//!
//! jemalloc and tcmalloc both keep, per thread and per size class, a bounded
//! LIFO of recently-freed blocks. Allocation pops the newest entry (warm in
//! cache); free pushes. When a push overflows the bound, the *oldest* ~3/4
//! of the buffer is flushed to the backing bin. The paper's whole point is
//! that freeing a large batch overflows this buffer repeatedly, while
//! amortized freeing lets allocations drain it between frees.

use crate::block::BlockHeader;
use crate::classes::NUM_CLASSES;
use std::collections::VecDeque;

/// Default capacity of each (thread, size-class) cache bin.
///
/// jemalloc's default for small bins is 200 slots; we keep that. The
/// ablation bench sweeps this.
pub const DEFAULT_TCACHE_CAP: usize = 200;

/// Numerator/denominator of the flushed fraction (jemalloc flushes ~3/4,
/// keeping the newest 1/4).
pub const FLUSH_NUM: usize = 3;
/// See [`FLUSH_NUM`].
pub const FLUSH_DEN: usize = 4;

/// One thread's cache: a bin per size class.
pub struct ThreadCache {
    bins: [VecDeque<&'static BlockHeader>; NUM_CLASSES],
    cap: usize,
}

impl ThreadCache {
    /// Creates an empty cache with per-bin capacity `cap`.
    pub fn new(cap: usize) -> Self {
        assert!(
            cap >= FLUSH_DEN,
            "cache capacity too small to flush fractionally"
        );
        ThreadCache {
            bins: std::array::from_fn(|_| VecDeque::with_capacity(cap + 1)),
            cap,
        }
    }

    /// Per-bin capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Pops the most recently freed block of `class`, if any (LIFO: the
    /// warmest block).
    #[inline]
    pub fn pop(&mut self, class: usize) -> Option<&'static BlockHeader> {
        self.bins[class].pop_back()
    }

    /// Pushes a freed block. Returns `true` if the bin now exceeds capacity
    /// and must be flushed.
    #[inline]
    pub fn push(&mut self, class: usize, hdr: &'static BlockHeader) -> bool {
        let bin = &mut self.bins[class];
        bin.push_back(hdr);
        bin.len() > self.cap
    }

    /// Pushes a refilled block *without* triggering overflow (refills are
    /// bounded below capacity by construction).
    #[inline]
    pub fn push_refill(&mut self, class: usize, hdr: &'static BlockHeader) {
        self.bins[class].push_back(hdr);
    }

    /// Current occupancy of a bin.
    pub fn len(&self, class: usize) -> usize {
        self.bins[class].len()
    }

    /// True if every bin is empty.
    pub fn is_empty(&self) -> bool {
        self.bins.iter().all(|b| b.is_empty())
    }

    /// Drains the oldest `FLUSH_NUM/FLUSH_DEN` of the bin into `out`
    /// (jemalloc's flush shape: keep the newest quarter).
    pub fn drain_flush(&mut self, class: usize, out: &mut Vec<&'static BlockHeader>) {
        let bin = &mut self.bins[class];
        let flush_n = bin.len() * FLUSH_NUM / FLUSH_DEN;
        out.extend(bin.drain(..flush_n));
    }

    /// Drains only the oldest `n` blocks into `out` — the *gradual* flush
    /// of the incremental jemalloc variant ([`crate::JeModel`] with a
    /// flush quantum): tiny critical sections instead of one long sweep.
    pub fn drain_n(&mut self, class: usize, n: usize, out: &mut Vec<&'static BlockHeader>) {
        let bin = &mut self.bins[class];
        let flush_n = n.min(bin.len());
        out.extend(bin.drain(..flush_n));
    }

    /// Drains *everything* from every bin (trial teardown).
    pub fn drain_all(&mut self, out: &mut Vec<&'static BlockHeader>) {
        for bin in &mut self.bins {
            out.extend(bin.drain(..));
        }
    }
}

pub use epic_util::tidslots::TidSlots;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::HEADER_SIZE;
    use std::alloc::{alloc, Layout};

    fn header(owner: u32) -> &'static BlockHeader {
        let layout = Layout::from_size_align(HEADER_SIZE + 16, 16).unwrap();
        // Deliberately leaked: tests need 'static headers.
        // SAFETY: fresh allocation, correct layout.
        unsafe {
            let p = alloc(layout);
            BlockHeader::init(p as *mut BlockHeader, owner, 0);
            &*(p as *const BlockHeader)
        }
    }

    #[test]
    fn lifo_pop_order() {
        let mut tc = ThreadCache::new(8);
        let a = header(1);
        let b = header(2);
        assert!(!tc.push(0, a));
        assert!(!tc.push(0, b));
        assert_eq!(tc.pop(0).unwrap().owner, 2, "newest first");
        assert_eq!(tc.pop(0).unwrap().owner, 1);
        assert!(tc.pop(0).is_none());
    }

    #[test]
    fn overflow_signals_at_cap() {
        let mut tc = ThreadCache::new(4);
        for i in 0..4 {
            assert!(
                !tc.push(0, header(i)),
                "push {i} under cap must not overflow"
            );
        }
        assert!(tc.push(0, header(99)), "push past cap must signal flush");
    }

    #[test]
    fn drain_flush_takes_oldest_three_quarters() {
        let mut tc = ThreadCache::new(8);
        for i in 0..8 {
            tc.push(0, header(i));
        }
        let mut out = Vec::new();
        tc.drain_flush(0, &mut out);
        assert_eq!(out.len(), 6, "3/4 of 8");
        let owners: Vec<u32> = out.iter().map(|h| h.owner).collect();
        assert_eq!(owners, vec![0, 1, 2, 3, 4, 5], "oldest first");
        assert_eq!(tc.len(0), 2, "newest quarter kept");
        // Remaining pops give the newest blocks.
        assert_eq!(tc.pop(0).unwrap().owner, 7);
    }

    #[test]
    fn drain_n_takes_oldest_quantum() {
        let mut tc = ThreadCache::new(8);
        for i in 0..8 {
            tc.push(0, header(i));
        }
        let mut out = Vec::new();
        tc.drain_n(0, 3, &mut out);
        let owners: Vec<u32> = out.iter().map(|h| h.owner).collect();
        assert_eq!(owners, vec![0, 1, 2], "oldest first, exactly n");
        assert_eq!(tc.len(0), 5);
        // Asking for more than available drains what exists.
        out.clear();
        tc.drain_n(0, 100, &mut out);
        assert_eq!(out.len(), 5);
        assert_eq!(tc.len(0), 0);
    }

    #[test]
    fn drain_all_empties() {
        let mut tc = ThreadCache::new(8);
        tc.push(0, header(0));
        tc.push(3, header(1));
        let mut out = Vec::new();
        tc.drain_all(&mut out);
        assert_eq!(out.len(), 2);
        assert!(tc.is_empty());
    }

    #[test]
    fn tid_slots_isolated() {
        let slots: TidSlots<u64> = TidSlots::new_with(4, |i| i as u64 * 10);
        // SAFETY: single-threaded test; each tid touched once.
        unsafe {
            *slots.get_mut(2) += 1;
            assert_eq!(*slots.get_mut(2), 21);
            assert_eq!(*slots.get_mut(0), 0);
        }
        assert_eq!(slots.len(), 4);
    }
}
