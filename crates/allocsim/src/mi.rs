//! The mimalloc-style model.
//!
//! Per Appendix B of the paper: free lists are sharded **per page**, not per
//! thread or per class. Each page has three lists — an allocation list, a
//! local free list (owner thread only, no synchronization) and a
//! *cross-thread* free list (remote frees CAS-push onto it). When the owner
//! runs out, it atomically collects the cross-thread list.
//!
//! A remote free is therefore one CAS on the target page's list head:
//! contention arises only if two threads simultaneously free blocks of the
//! *same page*. This is why "MImalloc sidesteps the problem altogether"
//! (§3.3, Table 3) and why amortized freeing does not help it.

use crate::block::{BlockHeader, FreeList, HEADER_SIZE};
use crate::chunks::ChunkStore;
use crate::classes::{class_of, size_of_class, NUM_CLASSES};
use crate::cost::CostModel;
use crate::stats::{AllocSnapshot, PerThread, ThreadAllocStats};
use crate::tcache::TidSlots;
use crate::{PoolAllocator, Tid};

use epic_util::Backoff;
use std::cell::UnsafeCell;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

/// Bytes per page region (mimalloc small pages are 64 KiB).
pub const PAGE_BYTES: usize = 64 * 1024;

/// Maximum number of pages the registry can hold (64 KiB × 65536 = 4 GiB of
/// pool memory, far beyond any experiment here).
const MAX_PAGES: usize = 1 << 16;

/// One mimalloc-style page: a 64 KiB region of blocks of a single class.
struct Page {
    /// Owning thread; only this thread touches `local` and `bump`.
    owner_tid: u32,
    /// Local free list — owner-only, unsynchronized.
    local: UnsafeCell<FreeList>,
    /// Cross-thread free list head (Treiber stack of header addrs).
    thread_free: AtomicUsize,
    /// Bump state within the page region — owner-only.
    bump: UnsafeCell<(usize, usize)>, // (cursor, end)
}

// SAFETY: `local` and `bump` are only accessed by `owner_tid`'s thread;
// `thread_free` is atomic. The registry hands out shared references.
unsafe impl Sync for Page {}
unsafe impl Send for Page {}

impl Page {
    /// Remote-frees a block onto this page's cross-thread list (lock-free).
    fn push_remote(&self, hdr: &'static BlockHeader) {
        let backoff = Backoff::new();
        let mut head = self.thread_free.load(Ordering::Relaxed);
        loop {
            hdr.next.store(head, Ordering::Relaxed);
            match self.thread_free.compare_exchange_weak(
                head,
                hdr.addr(),
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(h) => {
                    head = h;
                    backoff.spin();
                }
            }
        }
    }

    /// Owner-only: collects the cross-thread list into the local list.
    ///
    /// # Safety
    /// Must be called by the owning thread only.
    unsafe fn collect(&self) -> bool {
        let head = self.thread_free.swap(0, Ordering::Acquire);
        if head == 0 {
            return false;
        }
        // SAFETY: owner-only access to `local`; the swapped chain is
        // exclusively ours now.
        unsafe { (*self.local.get()).adopt_chain(head) };
        true
    }
}

/// Per-thread, per-class allocation state: the pages this thread owns for
/// that class, and which one it is currently allocating from.
struct MiBin {
    pages: Vec<u32>,
    current: usize,
}

struct MiThread {
    bins: [MiBin; NUM_CLASSES],
}

/// mimalloc-style pool allocator. See module docs.
pub struct MiModel {
    store: ChunkStore,
    pages: Box<[AtomicPtr<Page>]>,
    page_count: AtomicUsize,
    threads: TidSlots<MiThread>,
    counters: PerThread,
    #[allow(dead_code)]
    cost: CostModel,
}

impl MiModel {
    /// Builds the model.
    pub fn new(max_threads: usize, cost: CostModel) -> Self {
        let pages = (0..MAX_PAGES)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect::<Vec<_>>();
        MiModel {
            store: ChunkStore::new(),
            pages: pages.into_boxed_slice(),
            page_count: AtomicUsize::new(0),
            threads: TidSlots::new_with(max_threads, |_| MiThread {
                bins: std::array::from_fn(|_| MiBin {
                    pages: Vec::new(),
                    current: 0,
                }),
            }),
            counters: PerThread::new(max_threads),
            cost,
        }
    }

    /// Number of pages created so far.
    pub fn page_count(&self) -> usize {
        self.page_count.load(Ordering::Relaxed)
    }

    fn page(&self, id: u32) -> &Page {
        let p = self.pages[id as usize].load(Ordering::Acquire);
        debug_assert!(!p.is_null(), "page id {id} not registered");
        // SAFETY: pages are registered before their id escapes into any
        // block header and are only freed on model drop.
        unsafe { &*p }
    }

    /// Creates a fresh page for (tid, class) and registers it.
    fn new_page(&self, tid: Tid, class: usize) -> u32 {
        let region = self.store.grab_sized(PAGE_BYTES) as usize;
        let id = self.page_count.fetch_add(1, Ordering::Relaxed);
        assert!(id < MAX_PAGES, "page registry exhausted");
        let page = Box::new(Page {
            owner_tid: tid as u32,
            local: UnsafeCell::new(FreeList::new()),
            thread_free: AtomicUsize::new(0),
            bump: UnsafeCell::new((region, region + PAGE_BYTES)),
        });
        let _ = class;
        self.pages[id].store(Box::into_raw(page), Ordering::Release);
        id as u32
    }

    /// Owner-only: tries to take one block from page `id`.
    ///
    /// # Safety
    /// Caller must be the page's owner thread.
    unsafe fn try_alloc_from(&self, id: u32, class: usize) -> Option<&'static BlockHeader> {
        let page = self.page(id);
        // SAFETY: owner-only.
        let local = unsafe { &mut *page.local.get() };
        if let Some(h) = local.pop() {
            return Some(h);
        }
        // SAFETY: owner-only.
        if unsafe { page.collect() } {
            if let Some(h) = local.pop() {
                return Some(h);
            }
        }
        // Bump within the page region.
        let stride = HEADER_SIZE + size_of_class(class);
        // SAFETY: owner-only.
        let bump = unsafe { &mut *page.bump.get() };
        if bump.1 - bump.0 >= stride {
            let raw = bump.0 as *mut u8;
            bump.0 += stride;
            // SAFETY: fresh region bytes, aligned (region is 64-aligned and
            // strides are 16-multiples).
            unsafe { BlockHeader::init(raw as *mut BlockHeader, id, class as u32) };
            // SAFETY: just initialized.
            return Some(unsafe { &*(raw as *const BlockHeader) });
        }
        None
    }
}

impl Drop for MiModel {
    fn drop(&mut self) {
        let n = self.page_count.load(Ordering::Relaxed);
        for slot in self.pages.iter().take(n) {
            let p = slot.swap(std::ptr::null_mut(), Ordering::Relaxed);
            if !p.is_null() {
                // SAFETY: registered via Box::into_raw, dropped exactly once.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

impl PoolAllocator for MiModel {
    fn alloc(&self, tid: Tid, size: usize) -> NonNull<u8> {
        let class = class_of(size);
        let counters = self.counters.get(tid);
        let timed = counters.on_alloc();
        let clock = timed.then(epic_util::Clock::start);

        // SAFETY: tid-exclusivity per the PoolAllocator contract.
        let thread = unsafe { self.threads.get_mut(tid) };
        let bin = &mut thread.bins[class];

        let hdr = 'found: {
            // Try the current page, then rotate through the rest once.
            let n = bin.pages.len();
            for step in 0..n {
                let idx = (bin.current + step) % n;
                let id = bin.pages[idx];
                // SAFETY: pages in `bin` are owned by tid.
                if let Some(h) = unsafe { self.try_alloc_from(id, class) } {
                    if step == 0 {
                        counters.cache_hit();
                    }
                    bin.current = idx;
                    break 'found h;
                }
            }
            // All owned pages exhausted: make a new one.
            counters.refill();
            let id = self.new_page(tid, class);
            bin.pages.push(id);
            bin.current = bin.pages.len() - 1;
            // SAFETY: we own the fresh page.
            unsafe { self.try_alloc_from(id, class) }.expect("fresh page must have space")
        };

        if let Some(c) = clock {
            counters.add_sampled_alloc_ns(c.elapsed_ns());
        }
        hdr.user_ptr()
    }

    fn dealloc(&self, tid: Tid, ptr: NonNull<u8>) {
        let counters = self.counters.get(tid);
        let timed = counters.on_dealloc();
        let clock = timed.then(epic_util::Clock::start);

        // SAFETY: ptr was produced by this allocator per the contract.
        let hdr = unsafe { BlockHeader::from_user(ptr) };
        #[cfg(debug_assertions)]
        // SAFETY: freed user area is dead.
        unsafe {
            std::ptr::write_bytes(
                ptr.as_ptr(),
                crate::block::POISON,
                size_of_class(hdr.class as usize),
            );
        }

        let page = self.page(hdr.owner);
        if page.owner_tid == tid as u32 {
            // SAFETY: we are the owner; local list is ours.
            unsafe { (*page.local.get()).push(hdr) };
        } else {
            // The mimalloc trick: remote free = one CAS, no lock, contention
            // only on simultaneous frees to the *same page*.
            counters.remote(1);
            page.push_remote(hdr);
        }
        if let Some(c) = clock {
            counters.add_sampled_free_ns(c.elapsed_ns());
        }
    }

    fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            totals: self.counters.sum(),
            peak_bytes: self.store.total_bytes(),
            chunks: self.store.chunk_count(),
        }
    }

    fn thread_stats(&self, tid: Tid) -> ThreadAllocStats {
        self.counters.get(tid).snapshot()
    }

    fn peak_bytes(&self) -> usize {
        self.store.total_bytes()
    }

    fn name(&self) -> &'static str {
        "mi"
    }

    fn reset_stats(&self) {
        self.counters.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn roundtrip_and_local_reuse() {
        let m = MiModel::new(1, CostModel::zero());
        let p = m.alloc(0, 64);
        m.dealloc(0, p);
        let q = m.alloc(0, 64);
        assert_eq!(p, q, "local free list should recycle immediately");
        assert_eq!(m.page_count(), 1);
    }

    #[test]
    fn page_exhaustion_creates_new_page() {
        let m = MiModel::new(1, CostModel::zero());
        let per_page = PAGE_BYTES / (HEADER_SIZE + 64);
        let live: Vec<_> = (0..per_page + 1).map(|_| m.alloc(0, 64)).collect();
        assert_eq!(m.page_count(), 2, "overflow should open a second page");
        for p in live {
            m.dealloc(0, p);
        }
    }

    #[test]
    fn remote_free_lands_on_cross_thread_list_and_is_collected() {
        let m = Arc::new(MiModel::new(2, CostModel::zero()));
        // tid 0 allocates every block in its first page.
        let per_page = PAGE_BYTES / (HEADER_SIZE + 64);
        let ptrs: Vec<usize> = (0..per_page)
            .map(|_| m.alloc(0, 64).as_ptr() as usize)
            .collect();
        // tid 1 frees them all remotely (lock-free CAS pushes).
        let m2 = Arc::clone(&m);
        std::thread::spawn(move || {
            for p in ptrs {
                m2.dealloc(1, NonNull::new(p as *mut u8).unwrap());
            }
        })
        .join()
        .unwrap();
        assert_eq!(m.thread_stats(1).remote_freed, per_page as u64);
        // tid 0 can now reallocate the whole page without new chunks.
        let peak = m.peak_bytes();
        let live: Vec<_> = (0..per_page).map(|_| m.alloc(0, 64)).collect();
        assert_eq!(m.peak_bytes(), peak, "collection must recycle remote frees");
        assert_eq!(m.page_count(), 1);
        for p in live {
            m.dealloc(0, p);
        }
    }

    #[test]
    fn concurrent_remote_frees_to_same_page_are_safe() {
        let m = Arc::new(MiModel::new(5, CostModel::zero()));
        let per_page = PAGE_BYTES / (HEADER_SIZE + 64);
        let n = per_page.min(400);
        let ptrs: Vec<usize> = (0..n * 4)
            .map(|_| m.alloc(0, 64).as_ptr() as usize)
            .collect();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let m = Arc::clone(&m);
                let chunk: Vec<usize> = ptrs[i * n..(i + 1) * n].to_vec();
                std::thread::spawn(move || {
                    for p in chunk {
                        m.dealloc(i + 1, NonNull::new(p as *mut u8).unwrap());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // All n*4 blocks must be recoverable by the owner.
        let live: Vec<_> = (0..n * 4).map(|_| m.alloc(0, 64)).collect();
        let unique: std::collections::HashSet<usize> =
            live.iter().map(|p| p.as_ptr() as usize).collect();
        assert_eq!(
            unique.len(),
            n * 4,
            "lost or duplicated blocks in cross-thread list"
        );
        for p in live {
            m.dealloc(0, p);
        }
    }

    #[test]
    fn distinct_classes_use_distinct_pages() {
        let m = MiModel::new(1, CostModel::zero());
        let a = m.alloc(0, 64);
        let b = m.alloc(0, 256);
        // SAFETY: blocks came from alloc above.
        let (ha, hb) = unsafe { (BlockHeader::from_user(a), BlockHeader::from_user(b)) };
        assert_ne!(ha.owner, hb.owner, "pages are per size class");
        m.dealloc(0, a);
        m.dealloc(0, b);
    }
}
