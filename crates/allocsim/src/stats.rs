//! Allocator statistics: the quantities behind the paper's Tables 1–3.
//!
//! Table 1 reports `% free` (time in `free`), `% flush` (time in
//! `je_tcache_bin_flush_small`) and `% lock` (time in
//! `je_malloc_mutex_lock_slow`). The models measure the same three nested
//! quantities directly: every dealloc that triggers a flush is timed
//! exactly (flushes are rare and long); fast-path deallocs are sampled
//! 1-in-64 and extrapolated, keeping measurement overhead out of the fast
//! path the same way `perf`'s sampling does.

use epic_util::CachePadded;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sampling period for fast-path timing (power of two).
pub const SAMPLE_PERIOD: u64 = 64;

/// Per-thread counter block. All plain `Cell`s — only the owning thread
/// writes, snapshots read racily (fine for reporting).
#[derive(Debug, Default)]
pub struct ThreadCounters {
    /// Allocations served.
    pub allocs: Cell<u64>,
    /// Deallocations accepted.
    pub deallocs: Cell<u64>,
    /// Allocations served straight from the thread cache.
    pub cache_hits: Cell<u64>,
    /// Refills of the thread cache from a bin.
    pub refills: Cell<u64>,
    /// Flush events (thread cache overflow).
    pub flushes: Cell<u64>,
    /// Objects pushed out during flushes.
    pub flushed_objects: Cell<u64>,
    /// Objects returned to a bin they did not come from locally ("remote").
    pub remote_freed: Cell<u64>,
    /// Times a bin lock was waited on (acquire was not immediate).
    pub lock_contended: Cell<u64>,
    /// Nanoseconds spent waiting for bin locks (measured exactly).
    pub lock_wait_ns: Cell<u64>,
    /// Nanoseconds inside flush operations (measured exactly).
    pub flush_ns: Cell<u64>,
    /// Extrapolated nanoseconds in dealloc overall (sampled fast path +
    /// exact flush path).
    pub free_ns: Cell<u64>,
    /// Extrapolated nanoseconds in alloc (sampled).
    pub alloc_ns: Cell<u64>,
    /// Sampling phase counters.
    sample_tick_free: Cell<u64>,
    sample_tick_alloc: Cell<u64>,
}

// SAFETY: each ThreadCounters is logically owned by one thread (indexed by
// tid); concurrent readers only take racy snapshots of u64 Cells, which on
// all supported targets are single-word loads. We accept torn reporting
// reads in exchange for a zero-atomic fast path; counters are never used
// for control flow.
unsafe impl Sync for ThreadCounters {}

impl ThreadCounters {
    #[inline]
    fn bump(cell: &Cell<u64>, by: u64) {
        cell.set(cell.get().wrapping_add(by));
    }

    /// Records an allocation; returns true if this call should be timed
    /// (1-in-[`SAMPLE_PERIOD`] sampling).
    #[inline]
    pub fn on_alloc(&self) -> bool {
        Self::bump(&self.allocs, 1);
        let t = self.sample_tick_alloc.get().wrapping_add(1);
        self.sample_tick_alloc.set(t);
        t.is_multiple_of(SAMPLE_PERIOD)
    }

    /// Records a deallocation; returns true if this call should be timed.
    #[inline]
    pub fn on_dealloc(&self) -> bool {
        Self::bump(&self.deallocs, 1);
        let t = self.sample_tick_free.get().wrapping_add(1);
        self.sample_tick_free.set(t);
        t.is_multiple_of(SAMPLE_PERIOD)
    }

    /// Adds a sampled fast-path duration (extrapolated by the period).
    #[inline]
    pub fn add_sampled_free_ns(&self, ns: u64) {
        Self::bump(&self.free_ns, ns * SAMPLE_PERIOD);
    }

    /// Adds a sampled alloc duration (extrapolated by the period).
    #[inline]
    pub fn add_sampled_alloc_ns(&self, ns: u64) {
        Self::bump(&self.alloc_ns, ns * SAMPLE_PERIOD);
    }

    /// Adds an exactly-measured flush duration (also counted in free time).
    #[inline]
    pub fn add_flush_ns(&self, ns: u64) {
        Self::bump(&self.flush_ns, ns);
        Self::bump(&self.free_ns, ns);
    }

    /// Adds an exactly-measured lock wait.
    #[inline]
    pub fn add_lock_wait_ns(&self, ns: u64) {
        Self::bump(&self.lock_contended, 1);
        Self::bump(&self.lock_wait_ns, ns);
    }

    /// Racy snapshot for reporting.
    pub fn snapshot(&self) -> ThreadAllocStats {
        ThreadAllocStats {
            allocs: self.allocs.get(),
            deallocs: self.deallocs.get(),
            cache_hits: self.cache_hits.get(),
            refills: self.refills.get(),
            flushes: self.flushes.get(),
            flushed_objects: self.flushed_objects.get(),
            remote_freed: self.remote_freed.get(),
            lock_contended: self.lock_contended.get(),
            lock_wait_ns: self.lock_wait_ns.get(),
            flush_ns: self.flush_ns.get(),
            free_ns: self.free_ns.get(),
            alloc_ns: self.alloc_ns.get(),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        self.allocs.set(0);
        self.deallocs.set(0);
        self.cache_hits.set(0);
        self.refills.set(0);
        self.flushes.set(0);
        self.flushed_objects.set(0);
        self.remote_freed.set(0);
        self.lock_contended.set(0);
        self.lock_wait_ns.set(0);
        self.flush_ns.set(0);
        self.free_ns.set(0);
        self.alloc_ns.set(0);
    }

    /// Bumps the cache-hit counter.
    #[inline]
    pub fn cache_hit(&self) {
        Self::bump(&self.cache_hits, 1);
    }

    /// Bumps the refill counter.
    #[inline]
    pub fn refill(&self) {
        Self::bump(&self.refills, 1);
    }

    /// Records a flush of `objects` blocks.
    #[inline]
    pub fn flush(&self, objects: u64) {
        Self::bump(&self.flushes, 1);
        Self::bump(&self.flushed_objects, objects);
    }

    /// Records `n` remote-freed objects.
    #[inline]
    pub fn remote(&self, n: u64) {
        Self::bump(&self.remote_freed, n);
    }
}

/// Plain-data snapshot of one thread's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadAllocStats {
    /// Allocations served.
    pub allocs: u64,
    /// Deallocations accepted.
    pub deallocs: u64,
    /// Allocations served straight from the thread cache.
    pub cache_hits: u64,
    /// Refills of the thread cache from a bin.
    pub refills: u64,
    /// Flush events (thread cache overflow).
    pub flushes: u64,
    /// Objects pushed out during flushes.
    pub flushed_objects: u64,
    /// Objects returned to a remote bin.
    pub remote_freed: u64,
    /// Contended lock acquisitions.
    pub lock_contended: u64,
    /// Nanoseconds waiting on bin locks.
    pub lock_wait_ns: u64,
    /// Nanoseconds inside flushes.
    pub flush_ns: u64,
    /// Nanoseconds in dealloc (sampled + flushes).
    pub free_ns: u64,
    /// Nanoseconds in alloc (sampled).
    pub alloc_ns: u64,
}

impl ThreadAllocStats {
    /// Adds another snapshot into this one.
    pub fn accumulate(&mut self, other: &ThreadAllocStats) {
        self.allocs += other.allocs;
        self.deallocs += other.deallocs;
        self.cache_hits += other.cache_hits;
        self.refills += other.refills;
        self.flushes += other.flushes;
        self.flushed_objects += other.flushed_objects;
        self.remote_freed += other.remote_freed;
        self.lock_contended += other.lock_contended;
        self.lock_wait_ns += other.lock_wait_ns;
        self.flush_ns += other.flush_ns;
        self.free_ns += other.free_ns;
        self.alloc_ns += other.alloc_ns;
    }
}

/// Whole-allocator snapshot: summed thread stats plus memory accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllocSnapshot {
    /// Sum over all threads.
    pub totals: ThreadAllocStats,
    /// Peak (= total) chunk bytes.
    pub peak_bytes: usize,
    /// Number of chunks issued.
    pub chunks: usize,
}

impl AllocSnapshot {
    /// `% free`-style ratio helpers: fraction of `wall_ns × threads` spent
    /// freeing (the paper's Table 1 normalizes by total cycles across
    /// threads).
    pub fn pct_free(&self, wall_ns: u64, threads: usize) -> f64 {
        pct(self.totals.free_ns, wall_ns, threads)
    }

    /// Fraction of total thread-time inside flushes.
    pub fn pct_flush(&self, wall_ns: u64, threads: usize) -> f64 {
        pct(self.totals.flush_ns, wall_ns, threads)
    }

    /// Fraction of total thread-time waiting on bin locks.
    pub fn pct_lock(&self, wall_ns: u64, threads: usize) -> f64 {
        pct(self.totals.lock_wait_ns, wall_ns, threads)
    }
}

fn pct(part_ns: u64, wall_ns: u64, threads: usize) -> f64 {
    if wall_ns == 0 || threads == 0 {
        return 0.0;
    }
    100.0 * part_ns as f64 / (wall_ns as f64 * threads as f64)
}

/// A shared array of padded per-thread counter blocks.
pub struct PerThread {
    slots: Box<[CachePadded<ThreadCounters>]>,
    /// Global epoch-ish counter models can use for ids.
    pub serial: AtomicU64,
}

impl PerThread {
    /// Creates counters for `max_threads` threads.
    pub fn new(max_threads: usize) -> Self {
        let slots = (0..max_threads)
            .map(|_| CachePadded::new(ThreadCounters::default()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        PerThread {
            slots,
            serial: AtomicU64::new(0),
        }
    }

    /// The counter block for `tid`.
    #[inline]
    pub fn get(&self, tid: usize) -> &ThreadCounters {
        &self.slots[tid]
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no slots were allocated.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Sums all thread snapshots.
    pub fn sum(&self) -> ThreadAllocStats {
        let mut acc = ThreadAllocStats::default();
        for s in self.slots.iter() {
            acc.accumulate(&s.snapshot());
        }
        acc
    }

    /// Resets every slot.
    pub fn reset(&self) {
        for s in self.slots.iter() {
            s.reset();
        }
        self.serial.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_fires_once_per_period() {
        let c = ThreadCounters::default();
        let fired: u64 = (0..(SAMPLE_PERIOD * 4))
            .map(|_| u64::from(c.on_dealloc()))
            .sum();
        assert_eq!(fired, 4);
        assert_eq!(c.deallocs.get(), SAMPLE_PERIOD * 4);
    }

    #[test]
    fn sampled_time_extrapolates() {
        let c = ThreadCounters::default();
        c.add_sampled_free_ns(10);
        assert_eq!(c.free_ns.get(), 10 * SAMPLE_PERIOD);
    }

    #[test]
    fn flush_time_counts_into_free_time() {
        let c = ThreadCounters::default();
        c.add_flush_ns(1000);
        let s = c.snapshot();
        assert_eq!(s.flush_ns, 1000);
        assert_eq!(s.free_ns, 1000);
    }

    #[test]
    fn pct_normalizes_by_threads() {
        let snap = AllocSnapshot {
            totals: ThreadAllocStats {
                free_ns: 500,
                ..Default::default()
            },
            peak_bytes: 0,
            chunks: 0,
        };
        // 500ns over 2 threads × 1000ns wall = 25%.
        assert!((snap.pct_free(1000, 2) - 25.0).abs() < 1e-9);
        assert_eq!(snap.pct_free(0, 2), 0.0);
    }

    #[test]
    fn per_thread_sum_and_reset() {
        let pt = PerThread::new(3);
        pt.get(0).on_alloc();
        pt.get(1).on_alloc();
        pt.get(1).flush(10);
        assert_eq!(pt.sum().allocs, 2);
        assert_eq!(pt.sum().flushed_objects, 10);
        pt.reset();
        assert_eq!(pt.sum().allocs, 0);
    }

    #[test]
    fn accumulate_adds_fieldwise() {
        let a = ThreadAllocStats {
            allocs: 1,
            remote_freed: 5,
            ..Default::default()
        };
        let mut b = ThreadAllocStats {
            allocs: 2,
            ..Default::default()
        };
        b.accumulate(&a);
        assert_eq!(b.allocs, 3);
        assert_eq!(b.remote_freed, 5);
    }
}
