//! Chunk store: the memory substrate beneath every pool model.
//!
//! Models obtain big aligned chunks here and carve them into blocks. Chunks
//! are retained until the store is dropped, which gives us (a) the paper's
//! *peak memory* metric for free — the high-watermark equals the running
//! total — and (b) the property that use-after-free bugs in reclamation
//! schemes read stale mapped memory instead of segfaulting, so tests can
//! detect them logically (poison checks) rather than crashing the harness.

use std::alloc::{alloc, dealloc, Layout};
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Default chunk size: 1 MiB, a middle ground between jemalloc's 2 MiB
/// chunks and mimalloc's 4 MiB segments, scaled for container memory.
pub const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

/// Alignment of every chunk (and hence of the first block in it).
pub const CHUNK_ALIGN: usize = 64;

struct ChunkRegistry {
    chunks: Vec<(*mut u8, Layout)>,
}

// SAFETY: raw chunk pointers are only used for deallocation under the mutex.
unsafe impl Send for ChunkRegistry {}

/// Thread-safe chunk store with peak-byte accounting.
pub struct ChunkStore {
    registry: Mutex<ChunkRegistry>,
    total_bytes: AtomicUsize,
    chunk_bytes: usize,
}

impl ChunkStore {
    /// Creates a store issuing chunks of [`DEFAULT_CHUNK_BYTES`].
    pub fn new() -> Self {
        Self::with_chunk_bytes(DEFAULT_CHUNK_BYTES)
    }

    /// Creates a store issuing chunks of `chunk_bytes` (tests use small
    /// chunks to exercise chunk-exhaustion paths cheaply).
    pub fn with_chunk_bytes(chunk_bytes: usize) -> Self {
        assert!(chunk_bytes >= CHUNK_ALIGN);
        ChunkStore {
            registry: Mutex::new(ChunkRegistry { chunks: Vec::new() }),
            total_bytes: AtomicUsize::new(0),
            chunk_bytes,
        }
    }

    /// The configured chunk size.
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// Allocates one chunk, returning its base pointer. The chunk remains
    /// owned by the store; callers carve it but never free it.
    pub fn grab_chunk(&self) -> *mut u8 {
        self.grab_sized(self.chunk_bytes)
    }

    /// Allocates a chunk of a specific size (huge allocations, page
    /// segments).
    pub fn grab_sized(&self, bytes: usize) -> *mut u8 {
        let layout = Layout::from_size_align(bytes, CHUNK_ALIGN).expect("chunk layout");
        // SAFETY: layout has non-zero size.
        let ptr = unsafe { alloc(layout) };
        assert!(!ptr.is_null(), "chunk allocation of {bytes} bytes failed");
        self.registry.lock().chunks.push((ptr, layout));
        self.total_bytes.fetch_add(bytes, Ordering::Relaxed);
        ptr
    }

    /// Total chunk bytes ever issued — monotone, so it *is* the peak.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// Number of chunks issued.
    pub fn chunk_count(&self) -> usize {
        self.registry.lock().chunks.len()
    }
}

impl Default for ChunkStore {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ChunkStore {
    fn drop(&mut self) {
        let registry = self.registry.get_mut();
        for &(ptr, layout) in &registry.chunks {
            // SAFETY: each (ptr, layout) pair came from `alloc` above and is
            // freed exactly once here; no blocks may be referenced after the
            // owning allocator (and hence this store) is dropped.
            unsafe { dealloc(ptr, layout) };
        }
        registry.chunks.clear();
    }
}

/// A bump cursor over one chunk; each bin/page holds one and asks the store
/// for a fresh chunk when exhausted. Not thread-safe (callers hold the bin
/// lock or own the page).
#[derive(Debug)]
pub struct BumpCursor {
    cursor: *mut u8,
    end: *mut u8,
}

// SAFETY: BumpCursor is just a pair of pointers into store-owned memory; the
// owning bin's synchronization governs access.
unsafe impl Send for BumpCursor {}

impl BumpCursor {
    /// An exhausted cursor (first use always grabs a chunk).
    pub const fn empty() -> Self {
        BumpCursor {
            cursor: std::ptr::null_mut(),
            end: std::ptr::null_mut(),
        }
    }

    /// Carves `stride` bytes, grabbing a new chunk from `store` when the
    /// current one is exhausted. `stride` must be ≤ the store's chunk size.
    pub fn carve(&mut self, store: &ChunkStore, stride: usize) -> *mut u8 {
        debug_assert!(stride <= store.chunk_bytes());
        // SAFETY: cursor/end delimit a valid chunk (or are both null).
        let remaining = (self.end as usize).saturating_sub(self.cursor as usize);
        if remaining < stride {
            let base = store.grab_chunk();
            self.cursor = base;
            // SAFETY: base..base+chunk_bytes is one allocation.
            self.end = unsafe { base.add(store.chunk_bytes()) };
        }
        let out = self.cursor;
        // SAFETY: just checked capacity (stride ≤ chunk size ≤ remaining).
        self.cursor = unsafe { self.cursor.add(stride) };
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_bytes_counts_every_chunk() {
        let store = ChunkStore::with_chunk_bytes(4096);
        assert_eq!(store.total_bytes(), 0);
        store.grab_chunk();
        store.grab_chunk();
        assert_eq!(store.total_bytes(), 8192);
        assert_eq!(store.chunk_count(), 2);
    }

    #[test]
    fn grab_sized_for_huge() {
        let store = ChunkStore::new();
        let p = store.grab_sized(10 * 1024 * 1024);
        assert!(!p.is_null());
        assert_eq!(store.total_bytes(), 10 * 1024 * 1024);
    }

    #[test]
    fn bump_cursor_carves_disjoint_ranges() {
        let store = ChunkStore::with_chunk_bytes(1024);
        let mut bump = BumpCursor::empty();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let p = bump.carve(&store, 96);
            assert!(seen.insert(p as usize), "overlapping carve at {p:?}");
            // Write the whole block to catch carving past chunk bounds under
            // ASAN-style tooling.
            // SAFETY: carve returned 96 valid bytes.
            unsafe { std::ptr::write_bytes(p, 0xAB, 96) };
        }
        // 1024/96 = 10 blocks per chunk -> 100 blocks need 10 chunks.
        assert_eq!(store.chunk_count(), 10);
    }

    #[test]
    fn chunks_are_aligned() {
        let store = ChunkStore::with_chunk_bytes(4096);
        for _ in 0..4 {
            let p = store.grab_chunk();
            assert_eq!(p as usize % CHUNK_ALIGN, 0);
        }
    }

    #[test]
    fn concurrent_grabs_register_all() {
        use std::sync::Arc;
        let store = Arc::new(ChunkStore::with_chunk_bytes(4096));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        store.grab_chunk();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.chunk_count(), 200);
        assert_eq!(store.total_bytes(), 200 * 4096);
    }
}
