//! Shared helpers for the daemon integration tests: spawning a scaled-
//! down `epic-serve`, discovering its kernel-assigned port, and talking
//! plain HTTP/1.1 over `TcpStream` (no client library — same hand-
//! rolled spirit as the server).

#![allow(dead_code)] // each test crate uses a subset

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A fresh scratch directory (doubles as `EPIC_RESULTS`).
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("epic_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The `epic-run` worker binary: the sibling of the `epic-serve` under
/// test. A full workspace build always produces both; when this test
/// target is built in isolation (`cargo test -p epic-serve`), build it
/// on demand.
pub fn epic_run_path() -> PathBuf {
    let serve = PathBuf::from(env!("CARGO_BIN_EXE_epic-serve"));
    let exe = if cfg!(windows) {
        "epic-run.exe"
    } else {
        "epic-run"
    };
    let path = serve.parent().expect("bin dir").join(exe);
    if !path.is_file() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let status = Command::new(cargo)
            .args(["build", "-p", "epic-harness", "--bin", "epic-run"])
            .status()
            .expect("spawn cargo build");
        assert!(status.success(), "building epic-run failed");
    }
    assert!(path.is_file(), "no epic-run at {}", path.display());
    path
}

/// A running daemon under test.
pub struct Daemon {
    /// The daemon process.
    pub child: Child,
    /// The kernel-assigned port it bound.
    pub port: u16,
}

impl Daemon {
    /// Starts `epic-serve` on `--port 0` with `EPIC_RESULTS=dir`, the
    /// smoke-scale experiment knobs (`EPIC_MILLIS=millis`, one trial),
    /// and waits for the port file. `tag` keeps port files of
    /// sequential daemons in one dir apart.
    pub fn start(dir: &Path, tag: &str, slots: usize, millis: &str) -> Daemon {
        Daemon::start_with_env(dir, tag, slots, millis, &[])
    }

    /// [`Daemon::start`] with extra environment variables (e.g.
    /// `EPIC_RUNBOOK` so the daemon's registry includes generated
    /// scenario cells — worker children inherit the same env).
    pub fn start_with_env(
        dir: &Path,
        tag: &str,
        slots: usize,
        millis: &str,
        env: &[(&str, &str)],
    ) -> Daemon {
        let port_file = dir.join(format!("port-{tag}"));
        let _ = std::fs::remove_file(&port_file);
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_epic-serve"));
        cmd.args([
            "--port",
            "0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--epic-run",
            epic_run_path().to_str().unwrap(),
            "-j",
            &slots.to_string(),
        ])
        .env("EPIC_RESULTS", dir)
        .env("EPIC_MILLIS", millis)
        .env("EPIC_TRIALS", "1")
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let child = cmd.spawn().expect("spawn epic-serve");
        let deadline = Instant::now() + Duration::from_secs(30);
        let port = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(port) = text.trim().parse::<u16>() {
                    break port;
                }
            }
            assert!(
                Instant::now() < deadline,
                "daemon never wrote its port file"
            );
            std::thread::sleep(Duration::from_millis(20));
        };
        Daemon { child, port }
    }

    /// One HTTP request; returns (status, body). Panics on transport
    /// errors — the daemon is supposed to be up.
    pub fn request(&self, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
        http(self.port, method, path, body).expect("http request")
    }

    /// Requests a graceful shutdown and asserts the daemon exits 0.
    pub fn shutdown_and_wait(mut self) {
        let (status, body) = self.request("POST", "/shutdown", None);
        assert_eq!(status, 200, "shutdown must be acknowledged: {body}");
        let code = wait_with_timeout(&mut self.child, Duration::from_secs(30));
        assert_eq!(code, Some(0), "daemon must exit 0 after a graceful drain");
    }
}

/// Waits up to `timeout` for `child`, returning its exit code (`None` =
/// killed by signal). Panics if it never exits.
pub fn wait_with_timeout(child: &mut Child, timeout: Duration) -> Option<i32> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status.code();
        }
        assert!(Instant::now() < deadline, "daemon did not exit in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One `connection: close` HTTP/1.1 exchange.
pub fn http(
    port: u16,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect(("127.0.0.1", port)).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut req = format!("{method} {path} HTTP/1.1\r\nhost: localhost\r\n");
    match body {
        Some(b) => {
            req.push_str(&format!(
                "content-type: application/json\r\ncontent-length: {}\r\n\r\n{b}",
                b.len()
            ));
        }
        None => req.push_str("\r\n"),
    }
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let status = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line: {raw:.80}"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Sends raw bytes (not necessarily valid HTTP) and drains whatever the
/// server answers. Returns Ok even if the server just closes.
pub fn send_raw(port: u16, bytes: &[u8]) -> Result<String, String> {
    let mut stream =
        TcpStream::connect(("127.0.0.1", port)).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let _ = stream.write_all(bytes);
    let mut raw = String::new();
    let _ = stream.read_to_string(&mut raw);
    Ok(raw)
}

/// Polls `GET /jobs` until `pred` holds on the parsed body, or panics
/// at the deadline.
pub fn poll_jobs(
    daemon: &Daemon,
    timeout: Duration,
    what: &str,
    mut pred: impl FnMut(&epic_util::json::Json) -> bool,
) -> epic_util::json::Json {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, body) = daemon.request("GET", "/jobs", None);
        assert_eq!(status, 200, "GET /jobs: {body}");
        let v = epic_util::json::Json::parse(&body).expect("jobs json");
        if pred(&v) {
            return v;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last /jobs: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The `(status, experiment)` pairs in a `GET /jobs` body, id order.
pub fn job_states(v: &epic_util::json::Json) -> Vec<(String, String)> {
    v.get("jobs")
        .and_then(epic_util::json::Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|j| {
            (
                j.get("status")
                    .and_then(epic_util::json::Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                j.get("experiment")
                    .and_then(epic_util::json::Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
            )
        })
        .collect()
}
