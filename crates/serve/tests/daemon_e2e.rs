//! End-to-end daemon test: eight concurrent HTTP jobs run to
//! completion with SHAPES-compatible result records, live Prometheus
//! metrics, a server-side dashboard, resilience to malformed requests,
//! and a graceful drain that exits 0 and compacts the queue.

mod common;

use common::{job_states, poll_jobs, send_raw, Daemon};
use epic_harness::shapes::ShapesDoc;
use epic_util::json::Json;
use std::time::Duration;

#[test]
fn eight_jobs_metrics_dashboard_and_graceful_shutdown() {
    let dir = common::scratch_dir("e2e");
    let daemon = Daemon::start(&dir, "a", 4, "20");

    // --- Submit 8 jobs over HTTP (repeats are fine: stems are keyed by
    // job id). Pick real registry ids so the daemon-side validation and
    // the child-side registry agree.
    let registry = epic_harness::experiments::all_experiments();
    let ids: Vec<&str> = (0..8)
        .map(|i| registry[i % registry.len()].id.as_str())
        .collect();
    for (i, id) in ids.iter().enumerate() {
        let (status, body) = daemon.request(
            "POST",
            "/jobs",
            Some(&format!("{{\"experiment\": \"{id}\"}}")),
        );
        assert_eq!(status, 202, "submit {id}: {body}");
        let v = Json::parse(&body).expect("submit response json");
        assert_eq!(
            v.get("id").and_then(Json::as_f64),
            Some((i + 1) as f64),
            "ids are assigned in order"
        );
    }

    // --- Input validation: bad bodies are 400s, not daemon states.
    for (body, why) in [
        ("not json", "unparseable body"),
        ("{}", "missing experiment"),
        ("{\"experiment\": \"no_such_experiment\"}", "unknown id"),
        (
            "{\"experiment\": \"fig4_garbage\", \"env\": {\"PATH\": \"/tmp\"}}",
            "non-EPIC env override",
        ),
    ] {
        let (status, _) = daemon.request("POST", "/jobs", Some(body));
        assert_eq!(status, 400, "{why} must be rejected");
    }
    let (status, _) = daemon.request("GET", "/jobs/999", None);
    assert_eq!(status, 404);
    let (status, _) = daemon.request("GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, _) = daemon.request("DELETE", "/jobs", None);
    assert_eq!(status, 405);

    // --- Malformed wire data must not take the daemon down.
    for garbage in [
        &b"\xff\xfe\xfd garbage\r\n\r\n"[..],
        b"GET / HTTP/9.9\r\n\r\n",
        b"POST /jobs HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
        b"POST /jobs HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort",
    ] {
        let _ = send_raw(daemon.port, garbage);
    }
    let (status, _) = daemon.request("GET", "/jobs", None);
    assert_eq!(status, 200, "daemon must survive malformed requests");

    // --- All 8 jobs complete (tiny scale can FAIL oracles; completion
    // is what the daemon owes us, the verdict belongs to the record).
    let done = poll_jobs(&daemon, Duration::from_secs(120), "8 completed jobs", |v| {
        let states = job_states(v);
        states.len() == 8 && states.iter().all(|(s, _)| s == "done" || s == "failed")
    });

    // --- Every job's result is a parseable single-record epic-shapes-v2
    // document for the right experiment.
    let jobs = done.get("jobs").and_then(Json::as_arr).unwrap();
    for job in jobs {
        let experiment = job.get("experiment").and_then(Json::as_str).unwrap();
        let verdict = job.get("verdict").and_then(Json::as_str).unwrap();
        assert!(matches!(verdict, "PASS" | "ADVISORY" | "FAIL"));
        assert!(job.get("duration_ms").and_then(Json::as_f64).unwrap() > 0.0);
        let path = job.get("result_path").and_then(Json::as_str).unwrap();
        let doc = ShapesDoc::parse(&std::fs::read_to_string(path).expect("result file"))
            .expect("result parses as epic-shapes-v2");
        assert_eq!(doc.records.len(), 1);
        assert_eq!(doc.records[0].report.experiment, experiment);
    }

    // --- Metrics: well-formed Prometheus text with live values.
    let (status, metrics) = daemon.request("GET", "/metrics", None);
    assert_eq!(status, 200);
    for line in metrics.lines().filter(|l| !l.starts_with('#')) {
        let (_, value) = line.rsplit_once(' ').expect("sample line");
        assert!(value.parse::<f64>().is_ok(), "bad sample: {line}");
    }
    assert!(metrics.contains("epic_serve_jobs_submitted_total 8"));
    assert!(metrics.contains("epic_serve_attempts_started_total"));
    let done_jobs: usize = ["done", "failed"]
        .iter()
        .map(|s| {
            metrics
                .lines()
                .find_map(|l| l.strip_prefix(&format!("epic_serve_jobs{{status=\"{s}\"}} ")))
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(done_jobs, 8, "metrics must agree with /jobs:\n{metrics}");

    // --- Dashboard: HTML, escaped, mentions our jobs.
    let (status, html) = daemon.request("GET", "/dashboard", None);
    assert_eq!(status, 200);
    assert!(html.contains("<table>"));
    assert!(html.contains("fig4_garbage") || html.contains(ids[0]));

    // --- Graceful drain: exit 0, snapshot written, journal truncated.
    daemon.shutdown_and_wait();
    let queue_dir = dir.join("queue");
    let snapshot = std::fs::read_to_string(queue_dir.join("snapshot.json")).expect("snapshot");
    assert!(snapshot.contains("epic-queue-v1"));
    assert_eq!(
        std::fs::read_to_string(queue_dir.join("journal.ndjson")).expect("journal"),
        "",
        "graceful shutdown compacts the journal"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
