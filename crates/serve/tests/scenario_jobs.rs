//! Runbook-generated scenario cells as daemon jobs: a daemon started
//! with `EPIC_RUNBOOK` accepts `sc_*` ids over HTTP, its worker
//! children (which inherit the env) resolve the same registry, and the
//! completed job's result row carries the provenance hash. Without the
//! runbook the same id is a 400 — the daemon validates against its own
//! registry, never blindly trusts the caller.

mod common;

use common::{job_states, poll_jobs, Daemon};
use epic_harness::shapes::ShapesDoc;
use epic_util::json::Json;
use std::path::PathBuf;
use std::time::Duration;

fn smoke_runbook() -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../runbooks/smoke.json")
        .canonicalize()
        .expect("runbooks/smoke.json")
        .to_str()
        .unwrap()
        .to_string()
}

#[test]
fn runbook_cells_submit_run_and_stamp_provenance() {
    let dir = common::scratch_dir("scenario");
    let rb = smoke_runbook();
    let daemon = Daemon::start_with_env(&dir, "rb", 2, "20", &[("EPIC_RUNBOOK", &rb)]);

    let cell = "sc_churn_rcu_abtree_je_t2_u_c1024";
    let (status, body) = daemon.request(
        "POST",
        "/jobs",
        Some(&format!("{{\"experiment\": \"{cell}\"}}")),
    );
    assert_eq!(status, 202, "generated cell must be accepted: {body}");

    let done = poll_jobs(
        &daemon,
        Duration::from_secs(120),
        "scenario job done",
        |v| {
            let states = job_states(v);
            states.len() == 1 && states.iter().all(|(s, _)| s == "done" || s == "failed")
        },
    );
    let job = &done.get("jobs").and_then(Json::as_arr).unwrap()[0];
    assert_eq!(job.get("experiment").and_then(Json::as_str), Some(cell));
    let path = job
        .get("result_path")
        .and_then(Json::as_str)
        .expect("result_path");
    let doc = ShapesDoc::parse(&std::fs::read_to_string(path).expect("result file"))
        .expect("epic-shapes-v2");
    assert_eq!(doc.records.len(), 1);
    assert_eq!(doc.records[0].report.experiment, cell);
    let result = Json::parse(&doc.records[0].result_json).expect("result json");
    let prov = result
        .get("provenance")
        .and_then(Json::as_str)
        .expect("served results carry the provenance hash");
    assert_eq!(prov.len(), 32, "32 hex chars: {prov}");
    daemon.shutdown_and_wait();

    // Same id without the runbook: the registry has no such entry.
    let daemon = Daemon::start(&dir, "norb", 1, "20");
    let (status, body) = daemon.request(
        "POST",
        "/jobs",
        Some(&format!("{{\"experiment\": \"{cell}\"}}")),
    );
    assert_eq!(status, 400, "cell without runbook must be rejected: {body}");
    daemon.shutdown_and_wait();
    let _ = std::fs::remove_dir_all(&dir);
}
