//! Kill-and-restart: a daemon SIGKILLed mid-run loses nothing. The
//! successor replays the queue journal, moves orphaned `running` jobs
//! to `retrying` (their aborted attempt consumed no retry budget), and
//! completes every job **exactly once** — the journal holds exactly one
//! terminal upsert per job, and no completed job is ever re-run.

mod common;

use common::{job_states, poll_jobs, Daemon};
use epic_util::json::Json;
use std::time::Duration;

#[test]
fn sigkill_mid_run_then_restart_completes_every_job_exactly_once() {
    let dir = common::scratch_dir("restart");

    // --- First daemon: slow experiments (so the kill lands mid-attempt).
    let daemon = Daemon::start(&dir, "first", 2, "2000");
    for id in [
        "fig4_garbage",
        "fig7_passfirst",
        "fig8_periodic",
        "fig4_garbage",
    ] {
        let (status, body) = daemon.request(
            "POST",
            "/jobs",
            Some(&format!("{{\"experiment\": \"{id}\"}}")),
        );
        assert_eq!(status, 202, "submit {id}: {body}");
    }
    poll_jobs(
        &daemon,
        Duration::from_secs(60),
        "an attempt in flight",
        |v| job_states(v).iter().any(|(s, _)| s == "running"),
    );

    // --- SIGKILL: no drain, no compaction, journal left as-is.
    let mut child = daemon.child;
    child.kill().expect("kill daemon");
    let _ = child.wait();

    // --- Second daemon, same queue dir, fast experiments.
    let daemon = Daemon::start(&dir, "second", 2, "20");
    let done = poll_jobs(
        &daemon,
        Duration::from_secs(120),
        "all 4 jobs completed after restart",
        |v| {
            let states = job_states(v);
            states.len() == 4 && states.iter().all(|(s, _)| s == "done" || s == "failed")
        },
    );

    // --- No job dropped: all four submissions completed.
    let jobs = done.get("jobs").and_then(Json::as_arr).unwrap();
    assert_eq!(jobs.len(), 4);
    let experiments: Vec<&str> = jobs
        .iter()
        .map(|j| j.get("experiment").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(
        experiments,
        [
            "fig4_garbage",
            "fig7_passfirst",
            "fig8_periodic",
            "fig4_garbage"
        ]
    );

    // --- No job double-completed: the journal (both daemons' appends —
    // the SIGKILL skipped compaction, so the full history is intact)
    // holds exactly one terminal upsert per job id.
    let journal =
        std::fs::read_to_string(dir.join("queue").join("journal.ndjson")).expect("journal");
    for id in 1..=4u64 {
        let terminal = journal
            .lines()
            .filter_map(|l| Json::parse(l).ok())
            .filter(|v| v.get("id").and_then(Json::as_f64) == Some(id as f64))
            .filter(|v| {
                matches!(
                    v.get("status").and_then(Json::as_str),
                    Some("done" | "failed")
                )
            })
            .count();
        assert_eq!(terminal, 1, "job {id} must complete exactly once");
    }

    // --- The kill is visible in history: at least one job went through
    // recovery (`retrying` with the daemon-death reason) — proving the
    // restart actually resumed interrupted work rather than starting
    // fresh.
    assert!(
        journal
            .lines()
            .filter_map(|l| Json::parse(l).ok())
            .any(|v| {
                v.get("status").and_then(Json::as_str) == Some("retrying")
                    && v.get("reason")
                        .and_then(Json::as_str)
                        .is_some_and(|r| r.contains("daemon died"))
            }),
        "recovery transition missing from journal:\n{journal}"
    );

    // --- Attempt credit: nothing exhausted its budget on aborts alone.
    for job in jobs {
        let used = job.get("attempts_used").and_then(Json::as_f64).unwrap();
        let max = job.get("max_attempts").and_then(Json::as_f64).unwrap();
        assert!(
            used <= max,
            "attempts_used must never exceed max_attempts: {job:?}"
        );
    }

    daemon.shutdown_and_wait();
    let _ = std::fs::remove_dir_all(&dir);
}
