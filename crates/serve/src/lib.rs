//! # epic-serve
//!
//! The resident experiment service: submit paper experiments over HTTP,
//! let a persistent queue + process pool run them, scrape progress as
//! Prometheus metrics, and survive daemon restarts without losing or
//! re-running work.
//!
//! Where `epic-run check -j N` is a batch invocation — one shard, one
//! exit code — `epic-serve` keeps the same process-isolated job engine
//! ([`epic_harness::runner::pool`]) resident behind a small HTTP/1.1
//! API (hand-rolled in [`epic_util::http`]; the container builds with
//! no external crates):
//!
//! | Route | Effect |
//! |---|---|
//! | `POST /jobs` | submit `{"experiment": id, "env": {...}, "max_attempts": n}` |
//! | `GET /jobs` / `GET /jobs/{id}` | job status as JSON |
//! | `GET /metrics` | Prometheus text exposition |
//! | `GET /dashboard` | server-side HTML overview |
//! | `POST /shutdown` | graceful drain (in-flight jobs keep retry credit) |
//!
//! The queue ([`queue::Queue`]) persists every transition to an NDJSON
//! journal under `<results>/queue/` and compacts into an
//! `epic-queue-v1` snapshot, so a killed daemon's successor resumes the
//! exact queue — the restart integration test proves no job is dropped
//! or double-completed.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod dashboard;
pub mod metrics;
pub mod queue;
pub mod server;

pub use queue::{Job, JobStatus, Queue};
pub use server::{run, ServeCfg};
