//! The daemon itself: a TCP accept loop, a scheduler thread driving the
//! shared [`epic_harness::runner::pool::Pool`], and the HTTP routes.
//!
//! Threading model, kept deliberately small:
//!
//! * the **main thread** owns the listener: non-blocking accept,
//!   one spawned handler thread per connection (requests are tiny and
//!   connections are `connection: close`, so a thread pool would buy
//!   nothing);
//! * the **scheduler thread** exclusively owns the process pool and
//!   ticks it every 25 ms, feeding runnable queue jobs in and folding
//!   attempt results back into the queue;
//! * the [`Queue`] sits behind a mutex — the single point both sides
//!   agree on. Every transition is journaled by the queue itself, so
//!   there is no separate persistence path to race with.
//!
//! Shutdown (`POST /shutdown` or SIGTERM) is a *drain*: the scheduler
//! kills in-flight children and journals them as `retrying` — an
//! aborted attempt consumes no retry budget — then compacts the queue
//! and exits. A restarted daemon picks the queue back up from disk.

use crate::dashboard;
use crate::metrics::{self, Counters};
use crate::queue::{JobStatus, Queue};
use epic_harness::experiments::experiment_by_name;
use epic_harness::runner::pool::{unix_ms, AttemptOutcome, EventKind, JobSpec, Pool, PoolCfg};
use epic_util::http::{Limits, Request, Response};
use epic_util::json::Json;
use std::collections::HashSet;
use std::io::{BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration (see `epic-serve --help` for the flags).
#[derive(Debug, Clone)]
pub struct ServeCfg {
    /// TCP port to bind on 127.0.0.1 (0 = kernel-assigned).
    pub port: u16,
    /// When set, the bound port is written here after listen succeeds —
    /// how scripts using `--port 0` discover the address.
    pub port_file: Option<PathBuf>,
    /// The `epic-run` binary to spawn experiment children with.
    pub epic_run: PathBuf,
    /// Concurrent worker slots.
    pub slots: usize,
    /// Per-attempt timeout.
    pub timeout: Duration,
}

/// Set by the SIGTERM handler; polled by the accept loop.
static SIGNALED: AtomicBool = AtomicBool::new(false);

/// Registers a SIGTERM handler that requests a graceful drain, using a
/// raw `signal(2)` binding so no FFI crate is needed. Only the
/// async-signal-safe store happens in the handler.
#[cfg(unix)]
fn install_sigterm() {
    extern "C" fn on_sigterm(_sig: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    #[allow(clippy::fn_to_numeric_cast)]
    unsafe {
        signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm() {}

/// State shared between the HTTP handlers and the scheduler.
struct Shared {
    queue: Mutex<Queue>,
    counters: Counters,
    shutdown: AtomicBool,
    started: Instant,
    slots: usize,
}

/// Runs the daemon until a graceful shutdown completes. `Err` is a
/// startup failure (bind, queue open, run-dir creation).
pub fn run(cfg: ServeCfg) -> Result<(), String> {
    let queue_dir = epic_harness::report::results_dir().join("queue");
    let queue = Queue::open(&queue_dir)?;
    let recovered = queue.runnable().len();
    let listener = TcpListener::bind(("127.0.0.1", cfg.port))
        .map_err(|e| format!("epic-serve: cannot bind 127.0.0.1:{}: {e}", cfg.port))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("epic-serve: no local addr: {e}"))?;
    if let Some(pf) = &cfg.port_file {
        std::fs::write(pf, format!("{}\n", addr.port()))
            .map_err(|e| format!("epic-serve: cannot write port file {}: {e}", pf.display()))?;
    }
    let run_dir = epic_harness::runner::new_run_dir()
        .map_err(|e| format!("epic-serve: cannot create run dir: {e}"))?;
    install_sigterm();
    println!(
        "epic-serve: listening on http://{addr} ({} slots, timeout {}s, queue {}, logs {})",
        cfg.slots,
        cfg.timeout.as_secs(),
        queue_dir.display(),
        run_dir.display()
    );
    if recovered > 0 {
        println!("epic-serve: resuming {recovered} unfinished job(s) from the queue");
    }
    let shared = Arc::new(Shared {
        queue: Mutex::new(queue),
        counters: Counters::default(),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        slots: cfg.slots,
    });
    let pool = Pool::new(PoolCfg {
        slots: cfg.slots,
        timeout: cfg.timeout,
        dir: run_dir,
        program: cfg.epic_run.clone(),
    });
    let scheduler = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || run_scheduler(&shared, pool))
    };
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("epic-serve: set_nonblocking: {e}"))?;
    while !scheduler.is_finished() {
        if SIGNALED.load(Ordering::SeqCst) {
            shared.shutdown.store(true, Ordering::SeqCst);
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                eprintln!("epic-serve: accept error: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    scheduler
        .join()
        .map_err(|_| "epic-serve: scheduler thread panicked".to_string())?;
    println!("epic-serve: drained, queue compacted — bye");
    Ok(())
}

/// The scheduler loop: feed runnable jobs to the pool, fold results
/// back, and on shutdown abort in-flight attempts with retry credit.
fn run_scheduler(shared: &Shared, mut pool: Pool) {
    // Jobs handed to the pool this process lifetime; keeps a retrying
    // job (which the pool re-queues internally) from being submitted
    // twice.
    let mut submitted: HashSet<u64> = HashSet::new();
    loop {
        let shutdown = shared.shutdown.load(Ordering::SeqCst);
        {
            let mut q = shared.queue.lock().expect("queue lock");
            if !shutdown {
                for id in q.runnable() {
                    if submitted.contains(&id) {
                        continue;
                    }
                    let job = q.get(id).expect("runnable id exists").clone();
                    // Remaining budget: finished attempts consume it,
                    // aborted ones (previous daemon death) do not.
                    let remaining =
                        (job.max_attempts - job.attempts_used.min(job.max_attempts)).max(1);
                    let cost = experiment_by_name(&job.experiment)
                        .map(|e| e.cost)
                        .unwrap_or(1);
                    pool.submit(JobSpec {
                        experiment: job.experiment.clone(),
                        cost,
                        stem: format!("j{:06}-{}", job.id, job.experiment),
                        env: job.env.clone(),
                        max_attempts: remaining,
                        tag: job.id,
                    });
                    submitted.insert(id);
                }
            }
            let ended = pool.tick();
            for ev in pool.take_events() {
                if ev.kind == EventKind::Started {
                    Counters::bump(&shared.counters.attempts_started);
                    q.update(ev.tag, |j| j.status = JobStatus::Running);
                }
            }
            for end in ended {
                let id = end.spec.tag;
                let duration_ms = end.duration.as_secs_f64() * 1e3;
                match end.outcome {
                    AttemptOutcome::Completed(rec) => {
                        let verdict = rec.report.verdict().to_string();
                        let result_path = end.json_path.to_string_lossy().into_owned();
                        q.update(id, |j| {
                            j.attempts_used += 1;
                            j.status = if verdict == "FAIL" {
                                JobStatus::Failed
                            } else {
                                JobStatus::Done
                            };
                            j.verdict = Some(verdict);
                            j.duration_ms = Some(duration_ms);
                            j.result_path = Some(result_path);
                            j.reason = None;
                        });
                    }
                    AttemptOutcome::Crashed { reason, will_retry } => {
                        Counters::bump(&shared.counters.attempts_crashed);
                        if will_retry {
                            Counters::bump(&shared.counters.retries);
                        }
                        q.update(id, |j| {
                            j.attempts_used += 1;
                            j.status = if will_retry {
                                JobStatus::Retrying
                            } else {
                                JobStatus::Crashed
                            };
                            j.reason = Some(reason);
                            j.duration_ms = Some(duration_ms);
                        });
                    }
                }
            }
            if shutdown {
                // Drain: kill in-flight children; they keep their
                // attempt credit and a restarted daemon re-runs them.
                for aborted in pool.abort_all() {
                    q.update(aborted.spec.tag, |j| {
                        if j.status == JobStatus::Running {
                            j.status = JobStatus::Retrying;
                            j.reason = Some(
                                "daemon shut down while the attempt was in flight".to_string(),
                            );
                        }
                    });
                }
                q.compact();
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Serves one connection: parse one request, answer, close. A parse
/// error maps to its 4xx/5xx status when the connection is still
/// usable, and to a silent close when it is not.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    Counters::bump(&shared.counters.http_requests);
    let (response, shutdown_after) = match Request::parse(&mut reader, &Limits::default()) {
        Ok(req) => route(&req, shared),
        Err(e) => match Response::for_error(&e) {
            Some(resp) => (resp, false),
            None => return, // peer vanished mid-request; nothing to say
        },
    };
    if response.status >= 400 {
        Counters::bump(&shared.counters.http_errors);
    }
    let mut stream = stream;
    let _ = stream.write_all(&response.to_bytes());
    let _ = stream.flush();
    // The flag flips only after the response bytes are out, so the
    // /shutdown caller always hears the acknowledgement.
    if shutdown_after {
        shared.shutdown.store(true, Ordering::SeqCst);
    }
}

/// A plain-text error response (the route-level twin of
/// [`Response::for_error`], which maps parse errors).
fn error(status: u16, msg: &str) -> Response {
    Response::text(status, format!("{msg}\n"))
}

/// Dispatches one parsed request. Returns the response and whether to
/// request shutdown after sending it.
fn route(req: &Request, shared: &Shared) -> (Response, bool) {
    match (req.method.as_str(), req.target.as_str()) {
        ("POST", "/jobs") => (post_job(req, shared), false),
        ("GET", "/jobs") => (list_jobs(shared), false),
        ("GET", path) if path.starts_with("/jobs/") => (get_job(path, shared), false),
        ("GET", "/metrics") => {
            let q = shared.queue.lock().expect("queue lock");
            let body = metrics::render(
                &q,
                &shared.counters,
                shared.started.elapsed().as_secs_f64(),
                shared.slots,
            );
            (
                Response::new(200).with_content("text/plain; version=0.0.4", body.into_bytes()),
                false,
            )
        }
        ("GET", "/" | "/dashboard") => {
            let q = shared.queue.lock().expect("queue lock");
            let body = dashboard::render(&q, shared.started.elapsed().as_secs_f64(), shared.slots);
            (Response::html(200, body), false)
        }
        ("POST", "/shutdown") => (
            Response::json(200, "{\"status\": \"draining\"}".to_string()),
            true,
        ),
        ("GET" | "POST", _) => (error(404, "no such route"), false),
        _ => (error(405, "method not allowed"), false),
    }
}

/// `POST /jobs` — body `{"experiment": "<registry id>",
/// "env": {"EPIC_*": "..."}, "max_attempts": n}` (env and max_attempts
/// optional). Replies 202 with the assigned id.
fn post_job(req: &Request, shared: &Shared) -> Response {
    let body = match req.body_str() {
        Ok(s) => s,
        Err(_) => return error(400, "body is not utf-8"),
    };
    let v = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return error(400, &format!("bad json body: {e}")),
    };
    let Some(experiment) = v.get("experiment").and_then(Json::as_str) else {
        return error(400, "missing \"experiment\" field");
    };
    if experiment_by_name(experiment).is_none() {
        return error(
            400,
            &format!("unknown experiment '{experiment}' (see epic-run list)"),
        );
    }
    let mut env = Vec::new();
    if let Some(obj) = v.get("env").and_then(Json::as_obj) {
        for (k, val) in obj {
            if !k.starts_with("EPIC_") {
                return error(
                    400,
                    &format!("env override '{k}' rejected: only EPIC_* keys are allowed"),
                );
            }
            let Some(val) = val.as_str() else {
                return error(400, &format!("env value for '{k}' must be a string"));
            };
            env.push((k.clone(), val.to_string()));
        }
    }
    let max_attempts = v
        .get("max_attempts")
        .and_then(Json::as_f64)
        .map(|n| n as u32)
        .unwrap_or(2)
        .clamp(1, 10);
    Counters::bump(&shared.counters.jobs_submitted);
    let mut q = shared.queue.lock().expect("queue lock");
    let id = q.submit(experiment, env, max_attempts, unix_ms());
    Response::json(202, format!("{{\"id\": {id}, \"status\": \"queued\"}}"))
}

/// `GET /jobs` — every job, id order.
fn list_jobs(shared: &Shared) -> Response {
    let q = shared.queue.lock().expect("queue lock");
    let mut body = String::from("{\"jobs\": [");
    for (i, job) in q.jobs().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(&job.to_json());
    }
    body.push_str("]}");
    Response::json(200, body)
}

/// `GET /jobs/{id}`.
fn get_job(path: &str, shared: &Shared) -> Response {
    let id_str = &path["/jobs/".len()..];
    let Ok(id) = id_str.parse::<u64>() else {
        return error(400, &format!("bad job id '{id_str}'"));
    };
    let q = shared.queue.lock().expect("queue lock");
    match q.get(id) {
        Some(job) => Response::json(200, job.to_json()),
        None => error(404, &format!("no job {id}")),
    }
}
