//! The server-side HTML dashboard (`GET /dashboard`): a status summary
//! plus one table row per job, rendered fresh per request from the
//! queue — no client-side JavaScript, so it works from curl, lynx, and
//! locked-down browsers alike.

use crate::queue::{JobStatus, Queue};
use std::fmt::Write as _;

/// Escapes `&<>"` for safe embedding in HTML text and attributes.
/// Experiment ids are validated against the registry, but crash reasons
/// quote child stderr and env values are caller-controlled.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders the full dashboard page.
pub fn render(queue: &Queue, uptime_secs: f64, slots: usize) -> String {
    let mut out = String::from(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>epic-serve</title>\n<style>\n\
         body { font-family: monospace; margin: 2em; }\n\
         table { border-collapse: collapse; }\n\
         td, th { border: 1px solid #999; padding: 0.3em 0.7em; text-align: left; }\n\
         .done { background: #e6ffe6; } .failed { background: #fff3cd; }\n\
         .crashed { background: #ffe6e6; } .running { background: #e6f0ff; }\n\
         </style></head><body>\n<h1>epic-serve</h1>\n",
    );
    let _ = write!(
        out,
        "<p>up {uptime_secs:.0}s &middot; {slots} worker slots &middot; "
    );
    for (i, status) in JobStatus::all().into_iter().enumerate() {
        if i > 0 {
            out.push_str(" / ");
        }
        let _ = write!(out, "{} {}", queue.count(status), status.name());
    }
    out.push_str(
        "</p>\n<table>\n<tr><th>id</th><th>experiment</th><th>status</th>\
                  <th>attempts</th><th>verdict</th><th>duration</th><th>detail</th></tr>\n",
    );
    for job in queue.jobs() {
        let detail = job
            .reason
            .as_deref()
            .or(job.result_path.as_deref())
            .unwrap_or("");
        let duration = job
            .duration_ms
            .map(|d| format!("{:.0} ms", d))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "<tr class=\"{}\"><td>{}</td><td>{}</td><td>{}</td><td>{}/{}</td>\
             <td>{}</td><td>{}</td><td>{}</td></tr>",
            job.status.name(),
            job.id,
            escape(&job.experiment),
            job.status.name(),
            job.attempts_used,
            job.max_attempts,
            escape(job.verdict.as_deref().unwrap_or("")),
            duration,
            escape(detail),
        );
    }
    out.push_str("</table>\n</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("epic_dash_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn dashboard_escapes_untrusted_fields() {
        let dir = scratch();
        let mut queue = Queue::open(&dir).unwrap();
        let id = queue.submit("fig4_garbage", Vec::new(), 2, 100);
        queue.update(id, |j| {
            j.status = JobStatus::Crashed;
            j.reason = Some("<script>alert(1)</script> & \"quotes\"".to_string());
        });
        let html = render(&queue, 5.0, 2);
        assert!(!html.contains("<script>alert"), "reason must be escaped");
        assert!(html.contains("&lt;script&gt;alert(1)&lt;/script&gt; &amp; &quot;quotes&quot;"));
        assert!(html.contains("fig4_garbage"));
        assert!(html.contains("1 crashed"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
