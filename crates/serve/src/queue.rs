//! The persistent job queue behind the daemon: a crash-safe NDJSON
//! journal plus a snapshot, replayed at open so a restarted daemon
//! resumes exactly where the last one died.
//!
//! Persistence layout, under `<results>/queue/`:
//!
//! * `journal.ndjson` — one full-job upsert per state transition. The
//!   journal is append-only and fsync-free; a daemon killed mid-write
//!   leaves at most one torn final line, which replay tolerates (the
//!   previous upsert of that job still holds).
//! * `snapshot.json` — the `epic-queue-v1` document: every job plus the
//!   id counter. Written (atomically, tmp + rename) by
//!   [`Queue::compact`], which then truncates the journal.
//!
//! Compaction runs on graceful shutdown and when the journal grows past
//! [`compact_threshold`] lines — **not** at open: an open after a crash
//! preserves the journal as evidence (and the restart integration test
//! counts completion records in it).
//!
//! Recovery semantics at [`Queue::open`]: a job journaled as `running`
//! lost its attempt to the dead daemon. The abort consumed no retry
//! budget ([`Job::attempts_used`] only counts *finished* attempts), so
//! recovery moves it to `retrying` and the scheduler re-runs it with
//! full remaining credit — no result is lost, and a job whose `done`
//! record made it to the journal is never re-run.

use epic_util::json::{push_str_literal, render_num, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};

/// The snapshot schema tag.
pub const SCHEMA: &str = "epic-queue-v1";

/// Journal line count that triggers an automatic [`Queue::compact`].
/// (`EPIC_QUEUE_COMPACT_LINES`, default 4096, minimum 16 so tests can
/// force frequent compaction without a torrent of transitions.)
pub fn compact_threshold() -> usize {
    epic_util::topology::env_usize("EPIC_QUEUE_COMPACT_LINES", 4096).max(16)
}

/// Where a job is in its life cycle.
///
/// ```text
/// queued ─► running ─► done | failed            (terminal results)
///    ▲         │
///    │         ├─► crashed                      (terminal: budget exhausted)
///    │         └─► retrying ─► running ─► ...   (crash with credit, or a
///    └─────────────── (recovery) ──────────┘     daemon death mid-attempt)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting for a worker slot, never attempted.
    Queued,
    /// An attempt is in flight.
    Running,
    /// Completed with a PASS or ADVISORY oracle verdict.
    Done,
    /// Completed, but a strict oracle assertion failed (a *result*, not
    /// a crash — never retried).
    Failed,
    /// Crashed (panic, signal, timeout) with no attempt budget left.
    Crashed,
    /// Crashed or aborted with budget remaining; waiting to re-run.
    Retrying,
}

impl JobStatus {
    /// The serialized tag.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Crashed => "crashed",
            JobStatus::Retrying => "retrying",
        }
    }

    /// Parses a serialized tag.
    pub fn parse(s: &str) -> Result<JobStatus, String> {
        Ok(match s {
            "queued" => JobStatus::Queued,
            "running" => JobStatus::Running,
            "done" => JobStatus::Done,
            "failed" => JobStatus::Failed,
            "crashed" => JobStatus::Crashed,
            "retrying" => JobStatus::Retrying,
            other => return Err(format!("queue: unknown status '{other}'")),
        })
    }

    /// True when the job will make no further transitions.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Crashed
        )
    }

    /// All statuses, for metrics enumeration.
    pub fn all() -> [JobStatus; 6] {
        [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Done,
            JobStatus::Failed,
            JobStatus::Crashed,
            JobStatus::Retrying,
        ]
    }
}

/// One submitted experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Queue-assigned id (monotonic, never reused).
    pub id: u64,
    /// The registry experiment id.
    pub experiment: String,
    /// Current life-cycle state.
    pub status: JobStatus,
    /// Finished attempts so far (aborted attempts do not count — that
    /// is the retry credit a daemon death preserves).
    pub attempts_used: u32,
    /// Total attempt budget.
    pub max_attempts: u32,
    /// Per-job `EPIC_*` environment overrides forwarded to the child.
    pub env: Vec<(String, String)>,
    /// Unix ms at submission.
    pub created_ms: u64,
    /// Unix ms of the last transition.
    pub updated_ms: u64,
    /// Completed jobs: the oracle verdict (PASS | ADVISORY | FAIL).
    pub verdict: Option<String>,
    /// Completed/crashed jobs: wall-clock of the deciding attempt.
    pub duration_ms: Option<f64>,
    /// Crashed/retrying jobs: the crash classification.
    pub reason: Option<String>,
    /// Completed jobs: path of the child's single-record shapes
    /// document (`epic-shapes-v2`), for result retrieval.
    pub result_path: Option<String>,
}

impl Job {
    /// Serializes to one JSON object (a journal line / snapshot entry /
    /// API response body).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"id\": {}, \"experiment\": ", self.id);
        push_str_literal(&mut out, &self.experiment);
        out.push_str(", \"status\": ");
        push_str_literal(&mut out, self.status.name());
        let _ = write!(
            out,
            ", \"attempts_used\": {}, \"max_attempts\": {}, \"created_ms\": {}, \"updated_ms\": {}",
            self.attempts_used, self.max_attempts, self.created_ms, self.updated_ms
        );
        out.push_str(", \"env\": {");
        for (i, (k, v)) in self.env.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_str_literal(&mut out, k);
            out.push_str(": ");
            push_str_literal(&mut out, v);
        }
        out.push('}');
        if let Some(v) = &self.verdict {
            out.push_str(", \"verdict\": ");
            push_str_literal(&mut out, v);
        }
        if let Some(d) = self.duration_ms {
            let _ = write!(out, ", \"duration_ms\": {}", render_num(d));
        }
        if let Some(r) = &self.reason {
            out.push_str(", \"reason\": ");
            push_str_literal(&mut out, r);
        }
        if let Some(p) = &self.result_path {
            out.push_str(", \"result_path\": ");
            push_str_literal(&mut out, p);
        }
        out.push('}');
        out
    }

    /// Parses one serialized job (round-trip partner of [`Job::to_json`]).
    pub fn parse(line: &str) -> Result<Job, String> {
        let v = Json::parse(line)?;
        Job::from_json(&v)
    }

    /// Builds a job from an already-parsed JSON object.
    pub fn from_json(v: &Json) -> Result<Job, String> {
        let num = |key: &str| v.get(key).and_then(Json::as_f64);
        let text = |key: &str| v.get(key).and_then(Json::as_str).map(str::to_string);
        let mut env = Vec::new();
        if let Some(obj) = v.get("env").and_then(Json::as_obj) {
            for (k, val) in obj {
                let val = val
                    .as_str()
                    .ok_or_else(|| format!("queue: env value for {k} is not a string"))?;
                env.push((k.clone(), val.to_string()));
            }
        }
        Ok(Job {
            id: num("id").ok_or("queue: job missing id")? as u64,
            experiment: text("experiment").ok_or("queue: job missing experiment")?,
            status: JobStatus::parse(
                v.get("status")
                    .and_then(Json::as_str)
                    .ok_or("queue: job missing status")?,
            )?,
            attempts_used: num("attempts_used").ok_or("queue: job missing attempts_used")? as u32,
            max_attempts: num("max_attempts").ok_or("queue: job missing max_attempts")? as u32,
            env,
            created_ms: num("created_ms").ok_or("queue: job missing created_ms")? as u64,
            updated_ms: num("updated_ms").unwrap_or(0.0) as u64,
            verdict: text("verdict"),
            duration_ms: num("duration_ms"),
            reason: text("reason"),
            result_path: text("result_path"),
        })
    }
}

/// The queue: in-memory job table + journal/snapshot persistence.
pub struct Queue {
    dir: PathBuf,
    jobs: BTreeMap<u64, Job>,
    next_id: u64,
    journal: File,
    journal_lines: usize,
}

impl Queue {
    /// Opens (or creates) the queue at `dir`, replaying
    /// `snapshot.json` + `journal.ndjson` and applying crash recovery:
    /// jobs left `running` by a dead daemon move to `retrying` (their
    /// aborted attempt consumed no budget). The recovery transitions are
    /// journaled immediately so a second crash cannot double-recover.
    pub fn open(dir: &Path) -> Result<Queue, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("queue: cannot create {}: {e}", dir.display()))?;
        let mut jobs: BTreeMap<u64, Job> = BTreeMap::new();
        let mut next_id = 1;
        let snap_path = dir.join("snapshot.json");
        if snap_path.exists() {
            let text = std::fs::read_to_string(&snap_path)
                .map_err(|e| format!("queue: cannot read snapshot: {e}"))?;
            let v = Json::parse(&text).map_err(|e| format!("queue: bad snapshot: {e}"))?;
            match v.get("schema").and_then(Json::as_str) {
                Some(SCHEMA) => {}
                other => return Err(format!("queue: snapshot schema {other:?}, want {SCHEMA}")),
            }
            next_id = v
                .get("next_id")
                .and_then(Json::as_f64)
                .ok_or("queue: snapshot missing next_id")? as u64;
            for j in v.get("jobs").and_then(Json::as_arr).unwrap_or(&[]) {
                let job = Job::from_json(j)?;
                jobs.insert(job.id, job);
            }
        }
        let journal_path = dir.join("journal.ndjson");
        let mut journal_lines = 0;
        if journal_path.exists() {
            let file = File::open(&journal_path)
                .map_err(|e| format!("queue: cannot read journal: {e}"))?;
            for line in BufReader::new(file).lines() {
                let line = line.map_err(|e| format!("queue: journal read error: {e}"))?;
                if line.trim().is_empty() {
                    continue;
                }
                journal_lines += 1;
                match Job::parse(&line) {
                    Ok(job) => {
                        next_id = next_id.max(job.id + 1);
                        jobs.insert(job.id, job);
                    }
                    // A torn final line (daemon died mid-write) is
                    // expected; the job's previous upsert still holds.
                    Err(_) => continue,
                }
            }
        }
        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)
            .map_err(|e| format!("queue: cannot open journal for append: {e}"))?;
        let mut q = Queue {
            dir: dir.to_path_buf(),
            jobs,
            next_id,
            journal,
            journal_lines,
        };
        // Crash recovery: a `running` job's daemon died under it.
        let orphaned: Vec<u64> = q
            .jobs
            .values()
            .filter(|j| j.status == JobStatus::Running)
            .map(|j| j.id)
            .collect();
        for id in orphaned {
            q.update(id, |job| {
                job.status = JobStatus::Retrying;
                job.reason = Some("daemon died while the attempt was in flight".to_string());
            });
        }
        Ok(q)
    }

    /// Admits a new job and journals it. `max_attempts` is clamped to
    /// >= 1.
    pub fn submit(
        &mut self,
        experiment: &str,
        env: Vec<(String, String)>,
        max_attempts: u32,
        now_ms: u64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let job = Job {
            id,
            experiment: experiment.to_string(),
            status: JobStatus::Queued,
            attempts_used: 0,
            max_attempts: max_attempts.max(1),
            env,
            created_ms: now_ms,
            updated_ms: now_ms,
            verdict: None,
            duration_ms: None,
            reason: None,
            result_path: None,
        };
        self.append(&job);
        self.jobs.insert(id, job);
        id
    }

    /// Applies `f` to job `id` (no-op for unknown ids), stamps
    /// `updated_ms`, and journals the new state.
    pub fn update(&mut self, id: u64, f: impl FnOnce(&mut Job)) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        f(job);
        job.updated_ms = epic_harness::runner::pool::unix_ms();
        let line = job.to_json();
        let _ = writeln!(self.journal, "{line}");
        let _ = self.journal.flush();
        self.journal_lines += 1;
        if self.journal_lines >= compact_threshold() {
            self.compact();
        }
    }

    fn append(&mut self, job: &Job) {
        let _ = writeln!(self.journal, "{}", job.to_json());
        let _ = self.journal.flush();
        self.journal_lines += 1;
        if self.journal_lines >= compact_threshold() {
            self.compact();
        }
    }

    /// One job by id.
    pub fn get(&self, id: u64) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// All jobs, id order.
    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }

    /// How many jobs are in `status`.
    pub fn count(&self, status: JobStatus) -> usize {
        self.jobs.values().filter(|j| j.status == status).count()
    }

    /// True when no job is queued, running, or retrying.
    pub fn is_drained(&self) -> bool {
        self.jobs.values().all(|j| j.status.is_terminal())
    }

    /// The ids currently eligible for (re-)submission to the pool.
    pub fn runnable(&self) -> Vec<u64> {
        self.jobs
            .values()
            .filter(|j| matches!(j.status, JobStatus::Queued | JobStatus::Retrying))
            .map(|j| j.id)
            .collect()
    }

    /// Renders the `epic-queue-v1` snapshot document.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\": \"{SCHEMA}\", \"next_id\": {},\n \"jobs\": [",
            self.next_id
        );
        for (i, job) in self.jobs.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            out.push_str(&job.to_json());
        }
        out.push_str("\n ]}\n");
        out
    }

    /// Writes `snapshot.json` atomically (tmp + rename) and truncates
    /// the journal. Called on graceful shutdown and automatically past
    /// [`compact_threshold`].
    pub fn compact(&mut self) {
        let tmp = self.dir.join("snapshot.json.tmp");
        let snap = self.dir.join("snapshot.json");
        if std::fs::write(&tmp, self.snapshot_json()).is_err() {
            return; // keep journaling; the journal alone is sufficient
        }
        if std::fs::rename(&tmp, &snap).is_err() {
            return;
        }
        if let Ok(f) = File::create(self.dir.join("journal.ndjson")) {
            self.journal = f;
            self.journal_lines = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("epic_queue_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn full_job() -> Job {
        Job {
            id: 42,
            experiment: "fig4_garbage".to_string(),
            status: JobStatus::Retrying,
            attempts_used: 1,
            max_attempts: 3,
            env: vec![("EPIC_MILLIS".to_string(), "20".to_string())],
            created_ms: 1_700_000_000_000,
            updated_ms: 1_700_000_000_500,
            verdict: Some("PASS".to_string()),
            duration_ms: Some(12.5),
            reason: Some("killed by signal".to_string()),
            result_path: Some("/tmp/j42.json".to_string()),
        }
    }

    #[test]
    fn job_round_trips_with_and_without_optionals() {
        let full = full_job();
        assert_eq!(Job::parse(&full.to_json()).unwrap(), full);
        let minimal = Job {
            verdict: None,
            duration_ms: None,
            reason: None,
            result_path: None,
            env: Vec::new(),
            status: JobStatus::Queued,
            ..full
        };
        assert_eq!(Job::parse(&minimal.to_json()).unwrap(), minimal);
    }

    #[test]
    fn status_tags_round_trip_and_terminality_is_fixed() {
        for s in JobStatus::all() {
            assert_eq!(JobStatus::parse(s.name()).unwrap(), s);
        }
        assert!(JobStatus::parse("bogus").is_err());
        let terminal: Vec<JobStatus> = JobStatus::all()
            .into_iter()
            .filter(|s| s.is_terminal())
            .collect();
        assert_eq!(
            terminal,
            [JobStatus::Done, JobStatus::Failed, JobStatus::Crashed]
        );
    }

    #[test]
    fn submit_update_persist_and_reopen() {
        let dir = scratch("reopen");
        {
            let mut q = Queue::open(&dir).unwrap();
            let a = q.submit("fig4_garbage", Vec::new(), 2, 100);
            let b = q.submit("fig7_passfirst", Vec::new(), 2, 101);
            assert_eq!((a, b), (1, 2));
            q.update(a, |j| j.status = JobStatus::Running);
            q.update(b, |j| {
                j.status = JobStatus::Done;
                j.verdict = Some("PASS".to_string());
                j.attempts_used = 1;
            });
            // Queue dropped without compaction = daemon died.
        }
        let q = Queue::open(&dir).unwrap();
        // The running job recovered to retrying with its budget intact;
        // the done job stayed done.
        let a = q.get(1).unwrap();
        assert_eq!(a.status, JobStatus::Retrying);
        assert_eq!(a.attempts_used, 0, "abort consumes no budget");
        assert!(a.reason.as_deref().unwrap().contains("daemon died"));
        assert_eq!(q.get(2).unwrap().status, JobStatus::Done);
        // Ids keep counting from the high-water mark.
        let mut q = q;
        assert_eq!(q.submit("fig8_periodic", Vec::new(), 2, 102), 3);
        assert_eq!(q.runnable(), vec![1, 3]);
        assert!(!q.is_drained());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_journal_line_is_tolerated() {
        let dir = scratch("torn");
        {
            let mut q = Queue::open(&dir).unwrap();
            q.submit("fig4_garbage", Vec::new(), 2, 100);
        }
        // Simulate a daemon dying mid-append.
        let journal = dir.join("journal.ndjson");
        let mut text = std::fs::read_to_string(&journal).unwrap();
        text.push_str("{\"id\": 1, \"experiment\": \"fig4_garb");
        std::fs::write(&journal, text).unwrap();
        let q = Queue::open(&dir).unwrap();
        let job = q.get(1).unwrap();
        assert_eq!(job.status, JobStatus::Queued, "previous upsert holds");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_writes_snapshot_and_truncates_journal() {
        let dir = scratch("compact");
        let mut q = Queue::open(&dir).unwrap();
        let id = q.submit("fig4_garbage", Vec::new(), 2, 100);
        q.update(id, |j| {
            j.status = JobStatus::Done;
            j.attempts_used = 1;
        });
        q.compact();
        let snap = std::fs::read_to_string(dir.join("snapshot.json")).unwrap();
        assert!(snap.contains(SCHEMA));
        assert_eq!(
            std::fs::read_to_string(dir.join("journal.ndjson")).unwrap(),
            "",
            "compaction truncates the journal"
        );
        // Reopen from the snapshot alone.
        drop(q);
        let mut q = Queue::open(&dir).unwrap();
        assert_eq!(q.get(1).unwrap().status, JobStatus::Done);
        assert_eq!(q.submit("fig7_passfirst", Vec::new(), 2, 101), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_growth_triggers_automatic_compaction() {
        let dir = scratch("autocompact");
        let mut q = Queue::open(&dir).unwrap();
        let id = q.submit("fig4_garbage", Vec::new(), 2, 100);
        // compact_threshold() is >= 16; hammer well past it.
        for _ in 0..(compact_threshold() + 5) {
            q.update(id, |j| j.status = JobStatus::Retrying);
        }
        let journal_len = std::fs::read_to_string(dir.join("journal.ndjson"))
            .unwrap()
            .lines()
            .count();
        assert!(
            journal_len < compact_threshold(),
            "journal must have been compacted (still {journal_len} lines)"
        );
        assert!(dir.join("snapshot.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
