//! CLI entry point for the experiment daemon.
//!
//! ```text
//! epic-serve                                  # 127.0.0.1:7979, 2 slots
//! epic-serve --port 0 --port-file /tmp/port   # kernel-assigned port
//! epic-serve -j 8 --timeout-secs 900          # big-box serving
//! epic-serve --epic-run /path/to/epic-run     # explicit worker binary
//! ```
//!
//! Experiments run as `epic-run --one` child processes; by default the
//! `epic-run` sitting next to this binary is used. Results land under
//! `EPIC_RESULTS` (default `results/`), the queue under
//! `<results>/queue/`. Exits 0 after a graceful drain (`POST /shutdown`
//! or SIGTERM), non-zero on startup failure or bad usage.

use epic_serve::ServeCfg;
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "usage: epic-serve [--port N] [--port-file PATH] [--epic-run PATH] \
                     [-j N] [--timeout-secs N]";

fn parse_args(args: &[String]) -> Result<ServeCfg, String> {
    let default_timeout = epic_util::topology::env_u64("EPIC_JOB_TIMEOUT_SECS", 600);
    let mut cfg = ServeCfg {
        port: 7979,
        port_file: None,
        epic_run: PathBuf::new(),
        slots: 2,
        timeout: Duration::from_secs(default_timeout),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&str, String> {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--port" => {
                let v = value_of(arg)?;
                cfg.port = v
                    .parse::<u16>()
                    .map_err(|_| format!("bad --port '{v}'\n{USAGE}"))?;
            }
            "--port-file" => cfg.port_file = Some(PathBuf::from(value_of(arg)?)),
            "--epic-run" => cfg.epic_run = PathBuf::from(value_of(arg)?),
            "-j" | "--jobs" => {
                let v = value_of(arg)?;
                cfg.slots =
                    v.parse::<usize>().ok().filter(|j| *j >= 1).ok_or_else(|| {
                        format!("bad {arg} '{v}' (expected a count >= 1)\n{USAGE}")
                    })?;
            }
            "--timeout-secs" => {
                let v = value_of(arg)?;
                cfg.timeout = Duration::from_secs(
                    v.parse::<u64>()
                        .map_err(|_| format!("bad --timeout-secs '{v}'\n{USAGE}"))?,
                );
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    if cfg.epic_run.as_os_str().is_empty() {
        cfg.epic_run = default_epic_run()?;
    }
    if !cfg.epic_run.is_file() {
        return Err(format!(
            "worker binary {} does not exist (point --epic-run at an epic-run build)",
            cfg.epic_run.display()
        ));
    }
    Ok(cfg)
}

/// The `epic-run` next to this binary — the two are built into the same
/// target directory by every workspace build.
fn default_epic_run() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("cannot resolve own path: {e}"))?;
    let dir = me
        .parent()
        .ok_or_else(|| "own path has no parent directory".to_string())?;
    let exe = if cfg!(windows) {
        "epic-run.exe"
    } else {
        "epic-run"
    };
    Ok(dir.join(exe))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if let Err(e) = epic_serve::run(cfg) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
