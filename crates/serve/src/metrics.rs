//! Prometheus text-format metrics for the daemon (`GET /metrics`).
//!
//! Counters are process-lifetime atomics bumped by the HTTP and
//! scheduler threads; gauges are computed from the queue at scrape
//! time, so a scrape never disagrees with `GET /jobs`. The output
//! follows the Prometheus exposition format v0.0.4: `# HELP` / `# TYPE`
//! preamble per family, `name{label="value"} number` samples.

use crate::queue::Queue;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-lifetime counters (restart resets them; the queue itself is
/// the durable record).
#[derive(Debug, Default)]
pub struct Counters {
    /// HTTP requests accepted (any route, including errors).
    pub http_requests: AtomicU64,
    /// HTTP requests that produced a 4xx/5xx response.
    pub http_errors: AtomicU64,
    /// Jobs admitted via `POST /jobs`.
    pub jobs_submitted: AtomicU64,
    /// Child attempts started.
    pub attempts_started: AtomicU64,
    /// Child attempts that crashed (panic, signal, timeout).
    pub attempts_crashed: AtomicU64,
    /// Crashed attempts the scheduler re-queued.
    pub retries: AtomicU64,
}

impl Counters {
    /// Add 1 to `c` (relaxed; these are statistics, not synchronization).
    pub fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders the full scrape body.
pub fn render(queue: &Queue, counters: &Counters, uptime_secs: f64, slots: usize) -> String {
    let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let mut out = String::new();
    family(
        &mut out,
        "epic_serve_uptime_seconds",
        "gauge",
        "Seconds since the daemon started.",
    );
    let _ = writeln!(out, "epic_serve_uptime_seconds {}", uptime_secs);
    family(
        &mut out,
        "epic_serve_worker_slots",
        "gauge",
        "Concurrent experiment worker slots.",
    );
    let _ = writeln!(out, "epic_serve_worker_slots {slots}");
    family(
        &mut out,
        "epic_serve_jobs",
        "gauge",
        "Jobs in the queue by status.",
    );
    for status in crate::queue::JobStatus::all() {
        let _ = writeln!(
            out,
            "epic_serve_jobs{{status=\"{}\"}} {}",
            status.name(),
            queue.count(status)
        );
    }
    family(
        &mut out,
        "epic_serve_http_requests_total",
        "counter",
        "HTTP requests accepted.",
    );
    let _ = writeln!(
        out,
        "epic_serve_http_requests_total {}",
        c(&counters.http_requests)
    );
    family(
        &mut out,
        "epic_serve_http_errors_total",
        "counter",
        "HTTP requests answered with a 4xx/5xx status.",
    );
    let _ = writeln!(
        out,
        "epic_serve_http_errors_total {}",
        c(&counters.http_errors)
    );
    family(
        &mut out,
        "epic_serve_jobs_submitted_total",
        "counter",
        "Jobs admitted via POST /jobs.",
    );
    let _ = writeln!(
        out,
        "epic_serve_jobs_submitted_total {}",
        c(&counters.jobs_submitted)
    );
    family(
        &mut out,
        "epic_serve_attempts_started_total",
        "counter",
        "Child experiment attempts started.",
    );
    let _ = writeln!(
        out,
        "epic_serve_attempts_started_total {}",
        c(&counters.attempts_started)
    );
    family(
        &mut out,
        "epic_serve_attempts_crashed_total",
        "counter",
        "Child attempts that crashed (panic, signal, timeout).",
    );
    let _ = writeln!(
        out,
        "epic_serve_attempts_crashed_total {}",
        c(&counters.attempts_crashed)
    );
    family(
        &mut out,
        "epic_serve_retries_total",
        "counter",
        "Crashed attempts re-queued with remaining budget.",
    );
    let _ = writeln!(out, "epic_serve_retries_total {}", c(&counters.retries));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("epic_metrics_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Every sample line is `name[{labels}] value` with a finite value,
    /// and every family has HELP + TYPE exactly once, in order.
    #[test]
    fn scrape_is_well_formed_prometheus_text() {
        let dir = scratch();
        let mut queue = Queue::open(&dir).unwrap();
        queue.submit("fig4_garbage", Vec::new(), 2, 100);
        let counters = Counters::default();
        Counters::bump(&counters.jobs_submitted);
        let body = render(&queue, &counters, 1.5, 4);
        let mut seen_families = Vec::new();
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                seen_families.push(rest.split(' ').next().unwrap().to_string());
                continue;
            }
            if line.starts_with("# TYPE ") {
                continue;
            }
            let (name_labels, value) = line.rsplit_once(' ').expect("sample line");
            assert!(
                value.parse::<f64>().unwrap().is_finite(),
                "bad value in {line}"
            );
            let name = name_labels.split('{').next().unwrap();
            assert!(
                seen_families.iter().any(|f| f == name),
                "sample {name} has no HELP preamble"
            );
            assert!(name.starts_with("epic_serve_"), "bad namespace: {name}");
        }
        assert!(body.contains("epic_serve_jobs{status=\"queued\"} 1"));
        assert!(body.contains("epic_serve_jobs_submitted_total 1"));
        assert!(body.contains("epic_serve_worker_slots 4"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
